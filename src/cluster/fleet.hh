/**
 * @file
 * Cluster-scale open-loop serving: a multi-board NPU fleet under
 * trace-driven traffic with placement and SLO accounting.
 *
 * This is the layer the paper stops short of (§V evaluates collocated
 * tenants on one physical core): N boards x M cores serve per-tenant
 * open-loop arrival streams (cluster/traffic). Each tenant rents a
 * vNPU sized by the §III-B allocator from its EU budget; a placement
 * policy (cluster/placement) bin-packs the vNPUs onto cores; every
 * core then runs the event-driven serving simulation in open-loop
 * mode (runtime/serving) with per-tenant admission control. Results
 * aggregate fleet-wide: p50/p95/p99 latency, goodput (requests
 * meeting their SLO per second), rejection rate, and per-core
 * utilization — the metrics a capacity-planning study sweeps over
 * traffic shape x fleet size x placement policy x scheduler design.
 *
 * Cores are independent (no cross-core interference is modeled;
 * tenants here are single-core vNPUs), so the fleet decomposes into
 * per-core simulations that share nothing but the traffic clock —
 * and the engine exploits that on the host: per-core simulations run
 * concurrently on a common/threadpool worker pool (FleetConfig::
 * threads), with bit-identical results for any thread count.
 *
 * On top of the static capacity-planning mode, the engine is
 * *elastic* (ElasticConfig): the run splits into epochs; at every
 * epoch boundary a rebalancer inspects the utilization and queue
 * backlog each core actually exhibited, migrates vNPUs from the
 * hottest cores to the coldest (re-running the §III-B split against
 * the destination's residency), charges each move a configurable
 * migration cost through the hypervisor's destroy/create hypercalls
 * (exercising MMIO-window recycling), and the open-loop serving
 * resumes with carried-over backlogs.
 *
 * The fleet is also *fault-aware* (ResilienceConfig): an injected
 * fault trace (resilience/faults) takes cores and whole boards down
 * mid-run. A faulted core's epoch stops at the fault onset; at the
 * next epoch boundary the failover controller quarantines the core
 * in the placer, revokes its vNPUs through the hypervisor's bulk
 * host-side teardown, checkpoints each tenant's admitted-but-
 * unserved work (resilience/checkpoint), and restores the vNPUs on
 * surviving cores — charging a recovery stall and accounting the
 * downtime, lost vs. recovered requests, and MTTR. With failover
 * disabled the same trace simply kills the affected tenants, which
 * is the baseline bench_resilience compares against.
 */

#ifndef NEU10_CLUSTER_FLEET_HH
#define NEU10_CLUSTER_FLEET_HH

#include <string>
#include <vector>

#include "cluster/placement.hh"
#include "cluster/traffic.hh"
#include "npu/config.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "resilience/faults.hh"
#include "runtime/serving.hh"
#include "stats/distribution.hh"

namespace neu10
{

/** One tenant of the fleet: a model, an EU budget, and a stream. */
struct ClusterTenantSpec
{
    ModelId model = ModelId::Dlrm;
    unsigned batch = 32;

    /** EU budget; the §III-B allocator picks the ME:VE split. */
    unsigned eus = 4;

    /** Request stream description (shape, rate, seed). */
    TrafficSpec traffic;

    /** Per-request latency SLO in cycles (goodput numerator). */
    Cycles sloCycles = kCyclesInf;

    /** Admission depth: arrivals beyond this backlog are rejected. */
    unsigned maxQueueDepth = 64;

    double priority = 1.0;
};

/** Epoch-based elastic-rebalancing knobs. */
struct ElasticConfig
{
    /** Serving epochs the horizon splits into; 1 = static fleet
     * (placement decided once, never revisited). */
    unsigned epochs = 1;

    /** Rebalance at an epoch boundary only while the hottest-to-
     * coldest observed per-core pressure gap (EU-cycles/cycle)
     * exceeds this. */
    double imbalanceThreshold = 0.1;

    /** Migration budget per epoch boundary. */
    unsigned maxMigrationsPerEpoch = 4;

    /** Cycles a migrated tenant stalls at the next epoch's start
     * (context save, MMIO re-map, IOMMU re-attach): its carried
     * backlog and early arrivals wait this long before submission,
     * and the wait counts against its latency SLO. */
    Cycles migrationCostCycles = 2e5;

    /** Re-run the §III-B engine split against the destination core's
     * free engines on every migration (resplitForResidency). */
    bool resizeOnMigrate = true;

    /** When resizing, let the migrated vNPU grow into the
     * destination's idle EUs — which would otherwise be wasted — up
     * to this factor times its paid budget (1.0 = never grow). The
     * grant is transient: the next migration re-derives the split
     * from the paid budget again. */
    double growFactor = 2.0;
};

/** Fault-injection and failover knobs. */
struct ResilienceConfig
{
    /** Injected fault trace (absolute cycles, any order); empty =
     * failure-free run, bit-identical to the pre-resilience engine.
     * Generate one with generateFaultTrace() or write it by hand
     * (bench_resilience injects a single board loss). Faults are
     * detected at epoch boundaries, so failover needs
     * ElasticConfig::epochs >= 2 to act; a fatal fault still stops
     * the affected core's serving at its onset with epochs == 1,
     * but the evicted tenants can never be restored. */
    std::vector<FaultEvent> faults;

    /** Master switch: with failover off the same fault trace is
     * injected but dead cores' tenants are abandoned — their
     * checkpointed backlog and all later arrivals count as lost.
     * This is the no-failover baseline. */
    bool failover = true;

    /** Cycles a restored vNPU stalls before submitting again on its
     * new core (context re-create, program re-load, MMIO/IOMMU
     * re-map) — the failover analogue of
     * ElasticConfig::migrationCostCycles, and part of MTTR. */
    Cycles recoveryStallCycles = 5e5;
};

/** Fleet experiment configuration. */
struct FleetConfig
{
    unsigned numBoards = 4;
    NpuBoardConfig board;     ///< per-board shape (chips x cores)

    /** On-core scheduling design (PMT / V10 / Neu10-NH / Neu10). */
    PolicyKind corePolicy = PolicyKind::Neu10;

    /**
     * How each core serves its tenants: the event-driven open-loop
     * request simulation (default), or token-level LLM serving
     * (ServingMode::LlmContinuous — every tenant must run the LLaMA
     * model; sequences flow through the continuous-batching loop of
     * llm/llm_serving.hh with per-tenant KV pools carved from the
     * placements' HBM reservations). LLM mode requires
     * elastic.epochs == 1: sequence lengths are drawn per run from
     * the tenant seed, so carrying half-decoded sequences across an
     * epoch boundary would re-draw them.
     */
    ServingMode servingMode = ServingMode::OpenLoop;

    /** LLM serving knobs (used when servingMode is LlmContinuous). */
    LlmParams llm;

    PlacementPolicy placement = PlacementPolicy::FirstFit;

    std::vector<ClusterTenantSpec> tenants;

    /** Traffic-generation window in cycles. */
    Cycles horizon = 5e7;

    /** Per-core drain cap in cycles (guards saturated cores); applies
     * to the final (draining) epoch's event loop. */
    Cycles maxCycles = 2e9;

    /** Host threads running per-core simulations concurrently:
     * 1 = serial (no pool), 0 = one per hardware thread. Results are
     * bit-identical for every value. The NEU10_FLEET_THREADS
     * environment variable, when set, overrides this (the TSan CI
     * cell uses it to force real concurrency through every fleet
     * test). */
    unsigned threads = 1;

    /** Execution engine for every per-core simulation
     * (sim/engine.hh): the fast-forward default or the per-cycle
     * reference. Fleet results are bit-identical across engines;
     * bench_perf_engine records the wall-clock gap. */
    SimEngine engine = SimEngine::EventDriven;

    ElasticConfig elastic;

    ResilienceConfig resilience;

    /**
     * Sim-time tracing and metrics (obs/). When enabled, every
     * per-core run records its request lifecycle; the aggregation
     * thread merges the buffers into FleetResult::trace in core-index
     * order at each epoch boundary (the EpochRunCollector scheme), so
     * the exported bytes are identical at every @ref threads width
     * and across engines. TraceConfig::metrics additionally samples
     * fleet counters into FleetResult::metrics per epoch.
     */
    TraceConfig trace;

    /** Fleet-wide core count. */
    unsigned
    totalCores() const
    {
        return numBoards * board.totalCores();
    }
};

/** Where one tenant's vNPU landed (parallel to config.tenants).
 * Under elastic rebalancing this is the *final* placement; the
 * migration count records how often it moved. */
struct TenantPlacement
{
    CoreId core = kInvalidCore; ///< fleet-wide core index
    unsigned nMes = 0;          ///< allocator's engine split
    unsigned nVes = 0;
    Bytes hbmBytes = 0;         ///< segment-rounded HBM reservation
    double load = 0.0;          ///< offered EU-cycles/cycle estimate
    unsigned migrations = 0;    ///< elastic moves this vNPU made

    bool
    placed() const
    {
        return core != kInvalidCore;
    }
};

/** One epoch of an elastic run (a single row when static). */
struct FleetEpochReport
{
    unsigned epoch = 0;
    std::uint64_t completed = 0;  ///< completions within the epoch
    std::uint64_t backlog = 0;    ///< admitted-but-unserved, carried
    unsigned migrations = 0;      ///< applied at this epoch's end
    double pressureStddev = 0.0;  ///< cross-core observed imbalance

    /** Fatal core-down onsets detected during this epoch. */
    unsigned failures = 0;

    /** Checkpointed vNPUs restored at this epoch's end (may lag the
     * failures: restores retry while capacity is short). */
    unsigned restores = 0;
};

/** Post-run per-core report. */
struct FleetCoreReport
{
    CoreId core = 0;
    unsigned board = 0;         ///< board the core belongs to
    unsigned tenants = 0;       ///< resident vNPUs
    std::uint64_t completed = 0;

    /** Useful-ME / VE utilization over the *fleet* makespan, so
     * cores that drained early compare fairly. */
    double meUsefulUtil = 0.0;
    double veUtil = 0.0;

    /** Engine-count-weighted EU utilization (the billing unit). */
    double euUtil = 0.0;

    Cycles makespan = 0.0;      ///< this core's drain time

    /** Cycles of the horizon this core was down (injected faults). */
    Cycles downCycles = 0.0;
};

/** Whole-fleet outcome. */
struct FleetResult
{
    std::string policy;         ///< core scheduling design
    std::string placement;      ///< placement policy name

    std::vector<TenantPlacement> placements;
    std::vector<TenantResult> tenants; ///< open-loop per-tenant stats
    std::vector<FleetCoreReport> cores;

    /** Fleet-wide latency distribution (all completed requests). */
    Distribution latencyCycles;

    /** Per-core useful-ME utilizations (mean/stddev = balance). */
    Distribution coreMeUtil;

    /** Per-core EU utilizations (cross-core stddev = imbalance). */
    Distribution coreEuUtil;

    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t rejected = 0; ///< admission drops + unplaced-tenant
                                ///< arrivals + failure-lost requests
    std::uint64_t sloMet = 0;
    unsigned unplacedTenants = 0;

    /** Elastic accounting: total vNPU migrations applied and one
     * report per epoch (a single entry when elastic.epochs == 1). */
    unsigned migrations = 0;
    std::vector<FleetEpochReport> epochReports;

    // --- availability accounting (all zero/1.0 without faults) -----
    /** Injected fault events whose onset fell within the horizon. */
    unsigned faultsInjected = 0;

    /** Transient MMIO/DMA retry stalls charged to occupied cores
     * (a transient on an empty or already-down core has no MMIO
     * traffic to hit and is not counted). */
    unsigned transientFaults = 0;

    /** Fatal core-down onsets within the horizon, counted once per
     * affected core whether or not it hosted vNPUs at the time (a
     * board loss counts once per core of the board). Evictions and
     * failovers track the occupied subset. */
    unsigned coreFailures = 0;

    /** vNPUs successfully restored onto surviving cores. */
    unsigned failovers = 0;

    /** Requests permanently dropped by failures (also in rejected,
     * so completed + rejected == submitted still holds). */
    std::uint64_t lostRequests = 0;

    /** Admitted requests carried through a failover restore. */
    std::uint64_t recoveredRequests = 0;

    /** Summed tenant-downtime cycles (fault onset to restore-ready,
     * horizon-capped for tenants never restored). */
    Cycles downtimeCycles = 0.0;

    /** Core-level availability over the horizon:
     * 1 - sum(core down cycles) / (totalCores x horizon). Derived
     * from the injected trace, so identical with failover on or
     * off — failover changes what the downtime *costs*, not how
     * long the hardware was down. */
    double availability = 1.0;

    /** Mean cycles from fault onset to restored-and-submitting over
     * all failovers (0 when none succeeded). */
    Cycles mttrCycles = 0.0;

    Cycles makespan = 0.0;      ///< slowest core's drain time
    double goodput = 0.0;       ///< SLO-met requests / second

    /** Merged sim-time trace (FleetConfig::trace.enabled); empty
     * otherwise. Export with Trace::writeChromeJson. */
    Trace trace;

    /** Epoch-sampled fleet metrics (TraceConfig::metrics). */
    MetricsRegistry metrics;

    /** Rejected fraction of all submitted requests. */
    double
    rejectionRate() const
    {
        return submitted > 0
                   ? static_cast<double>(rejected) /
                         static_cast<double>(submitted)
                   : 0.0;
    }

    /** Fleet p50/p95/p99 in cycles. */
    double p50() const { return latencyCycles.percentile(0.50); }
    double p95() const { return latencyCycles.percentile(0.95); }
    double p99() const { return latencyCycles.percentile(0.99); }
};

/**
 * Run one fleet experiment. Deterministic: identical configs yield
 * identical results — traffic is seeded, per-core simulations are
 * independent, and aggregation happens in core-index order, so the
 * outcome is bit-identical for every FleetConfig::threads value.
 */
FleetResult runFleet(const FleetConfig &config);

} // namespace neu10

#endif // NEU10_CLUSTER_FLEET_HH
