/**
 * @file
 * Fleet-level vNPU placement (bin packing tenants onto cores).
 *
 * The §III-B allocator sizes a vNPU (ME/VE split, segment-rounded
 * HBM); this module decides *which* physical core of a multi-board
 * fleet hosts it. Placement is capacity-checked against dedicated
 * engines and HBM segments (hardware isolation, §III-C) and weighs
 * cores by an offered-load estimate — arrival rate x estimated busy
 * EU-cycles per request — so the policies differ observably:
 *
 *  - FirstFit: lowest-indexed core with room. Fast, fills boards in
 *    order, leaves the fleet tail idle at low load.
 *  - BestFit: feasible core with the least EU headroom after the
 *    placement (tightest fit). Packs densely, frees whole cores for
 *    big tenants, concentrates contention.
 *  - LoadBalanced: feasible core with the least offered load, ties
 *    broken by EU headroom then index. Spreads heat, best tails.
 */

#ifndef NEU10_CLUSTER_PLACEMENT_HH
#define NEU10_CLUSTER_PLACEMENT_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "npu/config.hh"

namespace neu10
{

/** Placement policies (see file doc). */
enum class PlacementPolicy
{
    FirstFit = 0,
    BestFit,
    LoadBalanced,
};

/** Human-readable policy name ("first-fit", ...). */
std::string placementName(PlacementPolicy policy);

/** Parse a placement-policy name (case-insensitive).
 * @throws FatalError on an unknown name. */
PlacementPolicy placementFromName(const std::string &name);

/** One vNPU's demand as the placer sees it. */
struct PlacementRequest
{
    unsigned nMes = 1;
    unsigned nVes = 1;
    Bytes hbmBytes = 0;    ///< segment-rounded HBM demand
    Bytes sramBytes = 0;   ///< segment-rounded SRAM demand

    /** Offered load in EU-cycles per core-clock cycle: at initial
     * placement an estimate (arrival rate x profiled busy EU-cycles
     * per request), at rebalance time the pressure *observed* over
     * the last epoch. */
    double load = 0.0;
};

/** One planned vNPU move of the epoch-boundary rebalancer. */
struct Migration
{
    size_t tenant = 0;             ///< index into the caller's tenants
    CoreId from = kInvalidCore;
    CoreId to = kInvalidCore;
};

/** Knobs of FleetPlacer::rebalance() (cluster/fleet forwards its
 * ElasticConfig values here). */
struct RebalanceOptions
{
    /** Act only while the hottest-to-coldest observed per-core
     * pressure gap (EU-cycles/cycle) exceeds this. */
    double imbalanceThreshold = 0.1;

    /** Migration budget for one rebalance pass. */
    unsigned maxMigrations = 4;
};

/** Remaining capacity and committed load of one fleet core. Engine
 * counts and HBM bytes are hard (placement fails without them); load
 * is advisory, in the same EU-cycles-per-cycle unit as
 * PlacementRequest::load. */
struct CoreCapacity
{
    unsigned freeMes = 0;
    unsigned freeVes = 0;
    Bytes freeHbm = 0;     ///< segment-rounded bytes still free
    Bytes freeSram = 0;    ///< segment-rounded bytes still free
    double load = 0.0;     ///< sum of placed requests' load estimates
    unsigned residents = 0;

    /** Quarantined by the failover controller (hardware fault): the
     * core hosts nothing until repaired — place/canHost/commit treat
     * it as full and the rebalancer never targets it. Its free
     * capacity is tracked through the outage so un-quarantining
     * restores it exactly. */
    bool quarantined = false;

    /** Free execution units (the bin-packing dimension). */
    unsigned
    freeEus() const
    {
        return freeMes + freeVes;
    }
};

/** Bin packer for one fleet of identical cores. */
class FleetPlacer
{
  public:
    /** @param num_cores fleet-wide core count (boards x cores).
     *  @param core      per-core physical capacity. */
    FleetPlacer(unsigned num_cores, const NpuCoreConfig &core);

    /**
     * Place one request under @p policy.
     * @return the chosen fleet-wide core index and commits the
     *         capacity, or kInvalidCore when no core fits.
     */
    CoreId place(const PlacementRequest &request,
                 PlacementPolicy policy);

    /** Capacity check against one specific core, no commitment. */
    bool canHost(CoreId core, const PlacementRequest &request) const;

    /**
     * Commit @p request's capacity on a specific core (a migration
     * destination chosen by the rebalancer rather than a policy).
     * @return false — and change nothing — when the core lacks
     *         capacity.
     */
    bool commit(CoreId core, const PlacementRequest &request);

    /** Release a previously committed request's capacity (migration
     * source, vNPU teardown). The request must match what was
     * committed. */
    void release(CoreId core, const PlacementRequest &request);

    /**
     * Epoch-boundary elastic rebalance: given the pressure observed
     * on every core over the last epoch, greedily move the heaviest
     * movable tenant from the hottest core to the coldest core with
     * capacity for it, until the hot-cold gap falls under the
     * threshold, no move narrows it, or the migration budget is
     * spent. Planned moves are committed on this placer (release from
     * the source, commit on the destination) as they are chosen; a
     * tenant moves at most once per pass, and quarantined cores are
     * invisible on both sides. Because the whole plan is applied to
     * this placer's books up front, a caller mirroring the moves into
     * other bookkeeping (e.g. hypervisor contexts) must tear down
     * every mover before re-creating any of them.
     * Deterministic: every tie breaks toward the lower index.
     *
     * @param core_pressure observed per-core demand, EU-cycles/cycle
     *                      (parallel to cores()).
     * @param tenant_core   current placement per tenant; kInvalidCore
     *                      entries (unplaced tenants) never move.
     * @param demands       per-tenant capacity demand; .load must be
     *                      the same observed-pressure unit as
     *                      @p core_pressure. Note the source core is
     *                      released this observed load even when the
     *                      original commit charged an estimate —
     *                      load is advisory and tolerates that
     *                      drift; engines and bytes never drift.
     * @return the applied moves, in order.
     */
    std::vector<Migration>
    rebalance(std::vector<double> core_pressure,
              const std::vector<CoreId> &tenant_core,
              const std::vector<PlacementRequest> &demands,
              const RebalanceOptions &options);

    /**
     * Quarantine (or, with @p q false, repair) one core. While
     * quarantined a core hosts nothing: place() skips it, canHost()
     * and commit() report no capacity, and rebalance() neither
     * drains it (its residents were evicted by the caller) nor picks
     * it as a migration destination. release() still works so a
     * failover controller can evict the failed core's residents
     * after quarantining it, in either order.
     */
    void setQuarantined(CoreId core, bool q);

    /** True while @p core is quarantined. */
    bool quarantined(CoreId core) const;

    /** Per-core remaining capacity (inspection / tests). */
    const std::vector<CoreCapacity> &cores() const { return cores_; }

  private:
    bool fits(const CoreCapacity &c,
              const PlacementRequest &r) const;

    std::vector<CoreCapacity> cores_;
};

} // namespace neu10

#endif // NEU10_CLUSTER_PLACEMENT_HH
