/**
 * @file
 * Fleet-level vNPU placement (bin packing tenants onto cores).
 *
 * The §III-B allocator sizes a vNPU (ME/VE split, segment-rounded
 * HBM); this module decides *which* physical core of a multi-board
 * fleet hosts it. Placement is capacity-checked against dedicated
 * engines and HBM segments (hardware isolation, §III-C) and weighs
 * cores by an offered-load estimate — arrival rate x estimated busy
 * EU-cycles per request — so the policies differ observably:
 *
 *  - FirstFit: lowest-indexed core with room. Fast, fills boards in
 *    order, leaves the fleet tail idle at low load.
 *  - BestFit: feasible core with the least EU headroom after the
 *    placement (tightest fit). Packs densely, frees whole cores for
 *    big tenants, concentrates contention.
 *  - LoadBalanced: feasible core with the least offered load, ties
 *    broken by EU headroom then index. Spreads heat, best tails.
 */

#ifndef NEU10_CLUSTER_PLACEMENT_HH
#define NEU10_CLUSTER_PLACEMENT_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "npu/config.hh"

namespace neu10
{

/** Placement policies (see file doc). */
enum class PlacementPolicy
{
    FirstFit = 0,
    BestFit,
    LoadBalanced,
};

/** Human-readable policy name ("first-fit", ...). */
std::string placementName(PlacementPolicy policy);

/** Parse a placement-policy name (case-insensitive).
 * @throws FatalError on an unknown name. */
PlacementPolicy placementFromName(const std::string &name);

/** One vNPU's demand as the placer sees it. */
struct PlacementRequest
{
    unsigned nMes = 1;
    unsigned nVes = 1;
    Bytes hbmBytes = 0;    ///< segment-rounded HBM demand
    double load = 0.0;     ///< offered EU-cycles per cycle estimate
};

/** Remaining capacity and committed load of one fleet core. */
struct CoreCapacity
{
    unsigned freeMes = 0;
    unsigned freeVes = 0;
    Bytes freeHbm = 0;
    double load = 0.0;     ///< sum of placed requests' load estimates
    unsigned residents = 0;

    /** Free execution units (the bin-packing dimension). */
    unsigned
    freeEus() const
    {
        return freeMes + freeVes;
    }
};

/** Bin packer for one fleet of identical cores. */
class FleetPlacer
{
  public:
    /** @param num_cores fleet-wide core count (boards x cores).
     *  @param core      per-core physical capacity. */
    FleetPlacer(unsigned num_cores, const NpuCoreConfig &core);

    /**
     * Place one request under @p policy.
     * @return the chosen fleet-wide core index and commits the
     *         capacity, or kInvalidCore when no core fits.
     */
    CoreId place(const PlacementRequest &request,
                 PlacementPolicy policy);

    /** Per-core remaining capacity (inspection / tests). */
    const std::vector<CoreCapacity> &cores() const { return cores_; }

  private:
    bool fits(const CoreCapacity &c,
              const PlacementRequest &r) const;

    std::vector<CoreCapacity> cores_;
};

} // namespace neu10

#endif // NEU10_CLUSTER_PLACEMENT_HH
