#include "cluster/placement.hh"

#include "common/logging.hh"
#include "common/strings.hh"

namespace neu10
{

std::string
placementName(PlacementPolicy policy)
{
    switch (policy) {
      case PlacementPolicy::FirstFit: return "first-fit";
      case PlacementPolicy::BestFit: return "best-fit";
      case PlacementPolicy::LoadBalanced: return "load-balanced";
    }
    panic("unknown placement policy %d", static_cast<int>(policy));
}

PlacementPolicy
placementFromName(const std::string &name)
{
    const std::string low = toLower(name);
    if (low == "first-fit" || low == "firstfit" || low == "ff")
        return PlacementPolicy::FirstFit;
    if (low == "best-fit" || low == "bestfit" || low == "bf")
        return PlacementPolicy::BestFit;
    if (low == "load-balanced" || low == "loadbalanced" ||
        low == "load-balance" || low == "lb")
        return PlacementPolicy::LoadBalanced;
    fatal("unknown placement policy '%s' (want first-fit, best-fit "
          "or load-balanced)", name.c_str());
}

FleetPlacer::FleetPlacer(unsigned num_cores, const NpuCoreConfig &core)
{
    NEU10_ASSERT(num_cores > 0, "fleet needs at least one core");
    CoreCapacity cap;
    cap.freeMes = core.numMes;
    cap.freeVes = core.numVes;
    cap.freeHbm = core.hbmBytes;
    cap.freeSram = core.sramBytes;
    cores_.assign(num_cores, cap);
}

bool
FleetPlacer::fits(const CoreCapacity &c, const PlacementRequest &r) const
{
    return !c.quarantined && c.freeMes >= r.nMes &&
           c.freeVes >= r.nVes && c.freeHbm >= r.hbmBytes &&
           c.freeSram >= r.sramBytes;
}

void
FleetPlacer::setQuarantined(CoreId core, bool q)
{
    NEU10_ASSERT(core < cores_.size(), "bad core id %u", core);
    cores_[core].quarantined = q;
}

bool
FleetPlacer::quarantined(CoreId core) const
{
    NEU10_ASSERT(core < cores_.size(), "bad core id %u", core);
    return cores_[core].quarantined;
}

CoreId
FleetPlacer::place(const PlacementRequest &request,
                   PlacementPolicy policy)
{
    NEU10_ASSERT(request.nMes >= 1 && request.nVes >= 1,
                 "a vNPU needs at least one ME and one VE");

    CoreId best = kInvalidCore;
    for (CoreId i = 0; i < cores_.size(); ++i) {
        const CoreCapacity &c = cores_[i];
        if (!fits(c, request))
            continue;
        if (policy == PlacementPolicy::FirstFit) {
            best = i;
            break;
        }
        if (best == kInvalidCore) {
            best = i;
            continue;
        }
        const CoreCapacity &b = cores_[best];
        if (policy == PlacementPolicy::BestFit) {
            // Tightest fit: least EU headroom once placed (HBM breaks
            // EU ties so full-ish cores keep filling).
            const unsigned eu_c = c.freeEus();
            const unsigned eu_b = b.freeEus();
            if (eu_c < eu_b ||
                (eu_c == eu_b && c.freeHbm < b.freeHbm))
                best = i;
        } else { // LoadBalanced
            if (c.load < b.load ||
                (c.load == b.load && c.freeEus() > b.freeEus()))
                best = i;
        }
    }

    if (best == kInvalidCore)
        return kInvalidCore;

    CoreCapacity &c = cores_[best];
    c.freeMes -= request.nMes;
    c.freeVes -= request.nVes;
    c.freeHbm -= request.hbmBytes;
    c.freeSram -= request.sramBytes;
    c.load += request.load;
    ++c.residents;
    return best;
}

bool
FleetPlacer::canHost(CoreId core, const PlacementRequest &request) const
{
    NEU10_ASSERT(core < cores_.size(), "bad core id %u", core);
    return fits(cores_[core], request);
}

bool
FleetPlacer::commit(CoreId core, const PlacementRequest &request)
{
    NEU10_ASSERT(core < cores_.size(), "bad core id %u", core);
    CoreCapacity &c = cores_[core];
    if (!fits(c, request))
        return false;
    c.freeMes -= request.nMes;
    c.freeVes -= request.nVes;
    c.freeHbm -= request.hbmBytes;
    c.freeSram -= request.sramBytes;
    c.load += request.load;
    ++c.residents;
    return true;
}

void
FleetPlacer::release(CoreId core, const PlacementRequest &request)
{
    NEU10_ASSERT(core < cores_.size(), "bad core id %u", core);
    CoreCapacity &c = cores_[core];
    NEU10_ASSERT(c.residents > 0, "core %u has no residents", core);
    c.freeMes += request.nMes;
    c.freeVes += request.nVes;
    c.freeHbm += request.hbmBytes;
    c.freeSram += request.sramBytes;
    c.load -= request.load;
    --c.residents;
}

std::vector<Migration>
FleetPlacer::rebalance(std::vector<double> core_pressure,
                       const std::vector<CoreId> &tenant_core,
                       const std::vector<PlacementRequest> &demands,
                       const RebalanceOptions &options)
{
    NEU10_ASSERT(core_pressure.size() == cores_.size(),
                 "pressure vector must cover every core");
    NEU10_ASSERT(tenant_core.size() == demands.size(),
                 "one demand per tenant");

    std::vector<CoreId> where = tenant_core;
    std::vector<Migration> moves;
    // One migration per tenant per pass: callers mirror the plan
    // into the hypervisor as one destroy + one pinned create per
    // mover, and a twice-moved tenant would corrupt that mirroring
    // (and thrash the vNPU in practice).
    std::vector<bool> moved(demands.size(), false);
    // Cores whose residents offered no viable move this pass: a core
    // hosting one huge-backlog vNPU can be the hottest yet unfixable
    // (moving its only tenant just relocates the hot spot), and must
    // not stall rebalancing of the next-hottest cores behind it.
    std::vector<bool> frozen(cores_.size(), false);
    while (moves.size() < options.maxMigrations) {
        // Hottest non-frozen and coldest cores; ties toward the
        // lower index. Quarantined cores are invisible on both
        // sides: they host nothing (not hot) and must not attract
        // migrants while down (not cold).
        CoreId hot = kInvalidCore, cold = kInvalidCore;
        for (CoreId c = 0; c < core_pressure.size(); ++c) {
            if (cores_[c].quarantined)
                continue;
            if (!frozen[c] &&
                (hot == kInvalidCore ||
                 core_pressure[c] > core_pressure[hot]))
                hot = c;
            if (cold == kInvalidCore ||
                core_pressure[c] < core_pressure[cold])
                cold = c;
        }
        if (hot == kInvalidCore || cold == kInvalidCore)
            break;
        const double gap = core_pressure[hot] - core_pressure[cold];
        if (gap <= options.imbalanceThreshold)
            break;

        // Heaviest tenant on the hot core that (a) fits the cold
        // core and (b) narrows the gap rather than inverting it.
        size_t pick = demands.size();
        for (size_t t = 0; t < demands.size(); ++t) {
            if (where[t] != hot || moved[t])
                continue;
            if (demands[t].load >= gap ||
                !canHost(cold, demands[t]))
                continue;
            if (pick == demands.size() ||
                demands[t].load > demands[pick].load)
                pick = t;
        }
        if (pick == demands.size()) {
            frozen[hot] = true;
            continue;
        }

        release(hot, demands[pick]);
        const bool ok = commit(cold, demands[pick]);
        NEU10_ASSERT(ok, "rebalance destination lost capacity");
        core_pressure[hot] -= demands[pick].load;
        core_pressure[cold] += demands[pick].load;
        where[pick] = cold;
        moved[pick] = true;
        moves.push_back(Migration{pick, hot, cold});
    }
    return moves;
}

} // namespace neu10
