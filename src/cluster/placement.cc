#include "cluster/placement.hh"

#include "common/logging.hh"
#include "common/strings.hh"

namespace neu10
{

std::string
placementName(PlacementPolicy policy)
{
    switch (policy) {
      case PlacementPolicy::FirstFit: return "first-fit";
      case PlacementPolicy::BestFit: return "best-fit";
      case PlacementPolicy::LoadBalanced: return "load-balanced";
    }
    panic("unknown placement policy %d", static_cast<int>(policy));
}

PlacementPolicy
placementFromName(const std::string &name)
{
    const std::string low = toLower(name);
    if (low == "first-fit" || low == "firstfit" || low == "ff")
        return PlacementPolicy::FirstFit;
    if (low == "best-fit" || low == "bestfit" || low == "bf")
        return PlacementPolicy::BestFit;
    if (low == "load-balanced" || low == "loadbalanced" ||
        low == "load-balance" || low == "lb")
        return PlacementPolicy::LoadBalanced;
    fatal("unknown placement policy '%s' (want first-fit, best-fit "
          "or load-balanced)", name.c_str());
}

FleetPlacer::FleetPlacer(unsigned num_cores, const NpuCoreConfig &core)
{
    NEU10_ASSERT(num_cores > 0, "fleet needs at least one core");
    CoreCapacity cap;
    cap.freeMes = core.numMes;
    cap.freeVes = core.numVes;
    cap.freeHbm = core.hbmBytes;
    cores_.assign(num_cores, cap);
}

bool
FleetPlacer::fits(const CoreCapacity &c, const PlacementRequest &r) const
{
    return c.freeMes >= r.nMes && c.freeVes >= r.nVes &&
           c.freeHbm >= r.hbmBytes;
}

CoreId
FleetPlacer::place(const PlacementRequest &request,
                   PlacementPolicy policy)
{
    NEU10_ASSERT(request.nMes >= 1 && request.nVes >= 1,
                 "a vNPU needs at least one ME and one VE");

    CoreId best = kInvalidCore;
    for (CoreId i = 0; i < cores_.size(); ++i) {
        const CoreCapacity &c = cores_[i];
        if (!fits(c, request))
            continue;
        if (policy == PlacementPolicy::FirstFit) {
            best = i;
            break;
        }
        if (best == kInvalidCore) {
            best = i;
            continue;
        }
        const CoreCapacity &b = cores_[best];
        if (policy == PlacementPolicy::BestFit) {
            // Tightest fit: least EU headroom once placed (HBM breaks
            // EU ties so full-ish cores keep filling).
            const unsigned eu_c = c.freeEus();
            const unsigned eu_b = b.freeEus();
            if (eu_c < eu_b ||
                (eu_c == eu_b && c.freeHbm < b.freeHbm))
                best = i;
        } else { // LoadBalanced
            if (c.load < b.load ||
                (c.load == b.load && c.freeEus() > b.freeEus()))
                best = i;
        }
    }

    if (best == kInvalidCore)
        return kInvalidCore;

    CoreCapacity &c = cores_[best];
    c.freeMes -= request.nMes;
    c.freeVes -= request.nVes;
    c.freeHbm -= request.hbmBytes;
    c.load += request.load;
    ++c.residents;
    return best;
}

} // namespace neu10
