#include "cluster/fleet.hh"

#include <algorithm>

#include "common/logging.hh"
#include "sim/clock.hh"
#include "vnpu/allocator.hh"

namespace neu10
{

FleetResult
runFleet(const FleetConfig &config)
{
    NEU10_ASSERT(!config.tenants.empty(), "fleet needs tenants");
    NEU10_ASSERT(config.totalCores() > 0, "fleet needs cores");

    const NpuCoreConfig &core_cfg = config.board.core;
    const unsigned cores_per_board = config.board.totalCores();
    const Clock clock(core_cfg.freqHz);

    FleetResult result;
    result.policy = policyName(config.corePolicy);
    result.placement = placementName(config.placement);
    result.placements.resize(config.tenants.size());
    result.tenants.resize(config.tenants.size());

    // ---- size every vNPU and bin-pack the fleet -------------------
    FleetPlacer placer(config.totalCores(), core_cfg);
    for (size_t i = 0; i < config.tenants.size(); ++i) {
        const ClusterTenantSpec &spec = config.tenants[i];
        const VnpuSizing sizing = sizeVnpuForModel(
            spec.model, spec.batch, spec.eus, core_cfg);

        TenantPlacement &pl = result.placements[i];
        pl.nMes = sizing.config.numMesPerCore;
        pl.nVes = sizing.config.numVesPerCore;
        pl.hbmBytes = sizing.config.memSizePerCore;
        // Offered load: requests/s x busy EU-cycles per request,
        // expressed in EU-cycles per cycle.
        pl.load = spec.traffic.ratePerSec *
                  (sizing.profile.meBusy + sizing.profile.veBusy) /
                  core_cfg.freqHz;

        PlacementRequest req;
        req.nMes = pl.nMes;
        req.nVes = pl.nVes;
        req.hbmBytes = pl.hbmBytes;
        req.load = pl.load;
        pl.core = placer.place(req, config.placement);
        if (!pl.placed())
            ++result.unplacedTenants;
    }

    // ---- generate traffic and run every occupied core -------------
    std::vector<std::vector<size_t>> residents(config.totalCores());
    std::vector<std::vector<Cycles>> arrivals(config.tenants.size());
    for (size_t i = 0; i < config.tenants.size(); ++i) {
        const TenantPlacement &pl = result.placements[i];
        arrivals[i] = generateArrivals(config.tenants[i].traffic,
                                       config.horizon,
                                       core_cfg.freqHz);
        if (pl.placed()) {
            residents[pl.core].push_back(i);
        } else {
            // The fleet turned the tenant away: every request of its
            // stream counts as submitted and rejected.
            TenantResult &tr = result.tenants[i];
            tr.model = modelAbbrev(config.tenants[i].model);
            tr.submitted = arrivals[i].size();
            tr.rejected = arrivals[i].size();
        }
    }

    result.cores.resize(config.totalCores());
    std::vector<ServingResult> core_runs(config.totalCores());
    for (CoreId c = 0; c < config.totalCores(); ++c) {
        FleetCoreReport &rep = result.cores[c];
        rep.core = c;
        rep.board = c / cores_per_board;
        rep.tenants = static_cast<unsigned>(residents[c].size());
        if (residents[c].empty())
            continue;

        ServingConfig sc;
        sc.core = core_cfg;
        sc.policy = config.corePolicy;
        sc.mode = ServingMode::OpenLoop;
        sc.maxCycles = config.maxCycles;
        for (size_t i : residents[c]) {
            const ClusterTenantSpec &spec = config.tenants[i];
            const TenantPlacement &pl = result.placements[i];
            TenantSpec ts;
            ts.model = spec.model;
            ts.batch = spec.batch;
            ts.nMes = pl.nMes;
            ts.nVes = pl.nVes;
            ts.priority = spec.priority;
            ts.arrivals = std::move(arrivals[i]);
            ts.maxQueueDepth = spec.maxQueueDepth;
            ts.sloCycles = spec.sloCycles;
            sc.tenants.push_back(std::move(ts));
        }
        core_runs[c] = runServing(sc);
        rep.makespan = core_runs[c].makespan;
        rep.completed = 0;
        for (const auto &t : core_runs[c].tenants)
            rep.completed += t.completed;
        result.makespan = std::max(result.makespan, rep.makespan);
    }
    result.makespan = std::max(result.makespan, config.horizon);

    // ---- aggregate fleet-wide SLO accounting ----------------------
    for (CoreId c = 0; c < config.totalCores(); ++c) {
        FleetCoreReport &rep = result.cores[c];
        if (!residents[c].empty()) {
            // Rescale per-core utilization onto the fleet makespan so
            // a core that drained early is not flattered by its short
            // measurement window.
            const double scale = rep.makespan / result.makespan;
            rep.meUsefulUtil = core_runs[c].meUsefulUtil * scale;
            rep.veUtil = core_runs[c].veUtil * scale;
            rep.euUtil = (rep.meUsefulUtil * core_cfg.numMes +
                          rep.veUtil * core_cfg.numVes) /
                         (core_cfg.numMes + core_cfg.numVes);
            for (size_t k = 0; k < residents[c].size(); ++k) {
                TenantResult &tr = result.tenants[residents[c][k]];
                tr = std::move(core_runs[c].tenants[k]);
                // Re-rate onto the fleet makespan: runServing divided
                // by this core's own drain time, which would flatter
                // tenants on early-draining cores (same rule as the
                // utilization rescaling above).
                const double secs =
                    clock.toSeconds(std::max(1.0, result.makespan));
                tr.throughput = tr.completed / secs;
                tr.goodput = tr.sloMet / secs;
            }
        }
        result.coreMeUtil.add(rep.meUsefulUtil);
        result.coreEuUtil.add(rep.euUtil);
    }

    for (const TenantResult &tr : result.tenants) {
        result.submitted += tr.submitted;
        result.completed += tr.completed;
        result.rejected += tr.rejected;
        result.sloMet += tr.sloMet;
        result.latencyCycles.merge(tr.latencyCycles);
    }
    result.goodput =
        result.sloMet / clock.toSeconds(std::max(1.0, result.makespan));
    return result;
}

} // namespace neu10
