#include "cluster/fleet.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/threadpool.hh"
#include "sim/clock.hh"
#include "virt/hypervisor.hh"
#include "vnpu/allocator.hh"

namespace neu10
{

FleetResult
runFleet(const FleetConfig &config)
{
    NEU10_ASSERT(!config.tenants.empty(), "fleet needs tenants");
    NEU10_ASSERT(config.totalCores() > 0, "fleet needs cores");
    NEU10_ASSERT(config.elastic.epochs >= 1,
                 "fleet needs at least one epoch");

    const NpuCoreConfig &core_cfg = config.board.core;
    const unsigned cores_per_board = config.board.totalCores();
    const unsigned num_cores = config.totalCores();
    const size_t num_tenants = config.tenants.size();
    const Clock clock(core_cfg.freqHz);

    FleetResult result;
    result.policy = policyName(config.corePolicy);
    result.placement = placementName(config.placement);
    result.placements.resize(num_tenants);
    result.tenants.resize(num_tenants);

    // ---- size every vNPU and bin-pack the fleet -------------------
    FleetPlacer placer(num_cores, core_cfg);
    std::vector<VnpuSizing> sizings(num_tenants);
    for (size_t i = 0; i < num_tenants; ++i) {
        const ClusterTenantSpec &spec = config.tenants[i];
        sizings[i] = sizeVnpuForModel(spec.model, spec.batch,
                                      spec.eus, core_cfg);
        const VnpuSizing &sizing = sizings[i];

        TenantPlacement &pl = result.placements[i];
        pl.nMes = sizing.config.numMesPerCore;
        pl.nVes = sizing.config.numVesPerCore;
        pl.hbmBytes = sizing.config.memSizePerCore;
        // Offered load: requests/s x busy EU-cycles per request,
        // expressed in EU-cycles per cycle.
        pl.load = spec.traffic.ratePerSec *
                  (sizing.profile.meBusy + sizing.profile.veBusy) /
                  core_cfg.freqHz;

        PlacementRequest req;
        req.nMes = pl.nMes;
        req.nVes = pl.nVes;
        req.hbmBytes = pl.hbmBytes;
        req.sramBytes = sizing.config.sramSizePerCore;
        req.load = pl.load;
        pl.core = placer.place(req, config.placement);
        if (!pl.placed())
            ++result.unplacedTenants;
    }

    // ---- install every placed vNPU through the hypervisor ---------
    // One hypervisor spans the fleet (to it, the boards are one big
    // inventory with the same core ordering as the placer). Later
    // migrations travel its destroy/create hypercalls, so long-lived
    // elastic runs churn — and recycle — the MMIO aperture exactly
    // as a production host would.
    NpuBoardConfig fleet_board = config.board;
    fleet_board.numChips = config.numBoards * config.board.numChips;
    Hypervisor hv(fleet_board);
    std::vector<VnpuId> vnpu_ids(num_tenants, kInvalidVnpu);
    for (size_t i = 0; i < num_tenants; ++i) {
        if (result.placements[i].placed())
            vnpu_ids[i] = hv.hcCreateVnpu(
                static_cast<TenantId>(i), sizings[i].config,
                IsolationMode::Hardware, result.placements[i].core);
    }

    // ---- generate traffic (seeded, epoch-independent) -------------
    std::vector<std::vector<Cycles>> arrivals(num_tenants);
    for (size_t i = 0; i < num_tenants; ++i) {
        arrivals[i] = generateArrivals(config.tenants[i].traffic,
                                       config.horizon,
                                       core_cfg.freqHz);
        if (!result.placements[i].placed()) {
            // The fleet turned the tenant away: every request of its
            // stream counts as submitted and rejected.
            TenantResult &tr = result.tenants[i];
            tr.model = modelAbbrev(config.tenants[i].model);
            tr.submitted = arrivals[i].size();
            tr.rejected = arrivals[i].size();
        }
    }

    // ---- epoch loop: simulate, observe, rebalance, resume ---------
    const unsigned epochs = config.elastic.epochs;
    const Cycles window = config.horizon / epochs;
    ThreadPool pool(config.threads);

    // Compile every placed tenant's binary exactly once; epochs and
    // host threads share the read-only programs (NeuISA binaries are
    // compiled against the physical core shape, so resized engine
    // grants execute the same code, §III-D).
    std::vector<CompiledModel> programs(num_tenants);
    pool.parallelFor(num_tenants, [&](size_t i) {
        if (!result.placements[i].placed())
            return;
        TenantSpec ts;
        ts.model = config.tenants[i].model;
        ts.batch = config.tenants[i].batch;
        programs[i] = compileFor(ts, config.corePolicy, core_cfg);
    });

    std::vector<std::vector<Cycles>> carried(num_tenants);
    std::vector<bool> migrated(num_tenants, false);
    std::vector<size_t> next_arrival(num_tenants, 0);
    std::vector<double> blocked_cycles(num_tenants, 0.0);
    std::vector<double> me_busy(num_cores, 0.0);
    std::vector<double> ve_busy(num_cores, 0.0);
    std::vector<Cycles> core_live(num_cores, 0.0);
    std::vector<std::uint64_t> core_completed(num_cores, 0);

    for (unsigned e = 0; e < epochs; ++e) {
        const Cycles start = e * window;
        const bool last = (e + 1 == epochs);

        std::vector<std::vector<size_t>> residents(num_cores);
        for (size_t i = 0; i < num_tenants; ++i)
            if (result.placements[i].placed())
                residents[result.placements[i].core].push_back(i);

        std::vector<CoreId> occupied;
        for (CoreId c = 0; c < num_cores; ++c)
            if (!residents[c].empty())
                occupied.push_back(c);

        std::vector<ServingConfig> runs(occupied.size());
        for (size_t k = 0; k < occupied.size(); ++k) {
            ServingConfig &sc = runs[k];
            sc.core = core_cfg;
            sc.policy = config.corePolicy;
            sc.mode = ServingMode::OpenLoop;
            sc.maxCycles = config.maxCycles;
            sc.stopAtCycles = last ? kCyclesInf : window;
            for (size_t i : residents[occupied[k]]) {
                const ClusterTenantSpec &spec = config.tenants[i];
                const TenantPlacement &pl = result.placements[i];
                TenantSpec ts;
                ts.model = spec.model;
                ts.batch = spec.batch;
                ts.nMes = pl.nMes;
                ts.nVes = pl.nVes;
                ts.priority = spec.priority;
                ts.maxQueueDepth = spec.maxQueueDepth;
                ts.sloCycles = spec.sloCycles;
                ts.program = &programs[i];
                // Carried backlog resumes here; a freshly migrated
                // vNPU additionally stalls for the migration cost.
                ts.backlog = std::move(carried[i]);
                carried[i].clear();
                ts.startOffsetCycles =
                    migrated[i] ? config.elastic.migrationCostCycles
                                : 0.0;
                migrated[i] = false;
                const Cycles stop =
                    last ? kCyclesInf : start + window;
                while (next_arrival[i] < arrivals[i].size() &&
                       arrivals[i][next_arrival[i]] < stop) {
                    ts.arrivals.push_back(
                        arrivals[i][next_arrival[i]] - start);
                    ++next_arrival[i];
                }
                sc.tenants.push_back(std::move(ts));
            }
        }

        // Per-core simulations are independent; each worker writes
        // only its own slot and aggregation below walks cores in
        // index order, so any thread count gives identical results.
        std::vector<ServingResult> done(occupied.size());
        pool.parallelFor(occupied.size(), [&](size_t k) {
            done[k] = runServing(runs[k]);
        });

        // ---- aggregate the epoch (serial, core-index order) -------
        FleetEpochReport er;
        er.epoch = e;
        std::vector<double> pressure(num_cores, 0.0);
        std::vector<double> tenant_pressure(num_tenants, 0.0);
        for (size_t k = 0; k < occupied.size(); ++k) {
            const CoreId c = occupied[k];
            const ServingResult &r = done[k];
            const Cycles measured = std::max(1.0, r.makespan);
            me_busy[c] += r.meUsefulUtil * measured;
            ve_busy[c] += r.veUtil * measured;
            core_live[c] += last ? r.makespan : window;
            for (size_t t = 0; t < residents[c].size(); ++t) {
                const size_t i = residents[c][t];
                const TenantResult &tr = r.tenants[t];
                TenantResult &acc = result.tenants[i];
                acc.model = tr.model;
                acc.submitted += tr.submitted;
                acc.rejected += tr.rejected;
                acc.completed += tr.completed;
                acc.sloMet += tr.sloMet;
                acc.reclaims += tr.reclaims;
                acc.latencyCycles.merge(tr.latencyCycles);
                blocked_cycles[i] += tr.blockedFrac * measured;
                core_completed[c] += tr.completed;
                er.completed += tr.completed;
                er.backlog += tr.backlog.size();
                // Carry admitted-but-unserved work into the next
                // epoch, restamped relative to its start.
                for (Cycles stamp : tr.backlog)
                    carried[i].push_back(stamp - window);
                // The pressure this tenant demonstrably exerted:
                // work it got through *plus* work it left queued,
                // in busy EU-cycles per cycle of the epoch.
                tenant_pressure[i] =
                    (tr.completed + tr.backlog.size()) *
                    (sizings[i].profile.meBusy +
                     sizings[i].profile.veBusy) /
                    window;
                pressure[c] += tenant_pressure[i];
            }
        }
        {
            Distribution pdist;
            for (CoreId c = 0; c < num_cores; ++c)
                pdist.add(pressure[c]);
            er.pressureStddev = pdist.stddev();
        }

        // ---- elastic rebalance at the epoch boundary --------------
        if (!last && epochs > 1) {
            std::vector<CoreId> where(num_tenants, kInvalidCore);
            std::vector<PlacementRequest> demands(num_tenants);
            for (size_t i = 0; i < num_tenants; ++i) {
                const TenantPlacement &pl = result.placements[i];
                where[i] = pl.core;
                demands[i].nMes = pl.nMes;
                demands[i].nVes = pl.nVes;
                demands[i].hbmBytes = pl.hbmBytes;
                demands[i].sramBytes =
                    sizings[i].config.sramSizePerCore;
                demands[i].load = tenant_pressure[i];
            }
            RebalanceOptions opts;
            opts.imbalanceThreshold =
                config.elastic.imbalanceThreshold;
            opts.maxMigrations = config.elastic.maxMigrationsPerEpoch;
            const std::vector<Migration> moves =
                placer.rebalance(pressure, where, demands, opts);

            for (const Migration &mv : moves) {
                TenantPlacement &pl = result.placements[mv.tenant];
                if (config.elastic.resizeOnMigrate) {
                    // Re-run the §III-B split against the
                    // destination's residency: free engines there
                    // once this vNPU's committed share is set aside.
                    // The grant may grow into idle EUs (growFactor);
                    // when the grown or re-split request no longer
                    // fits (engines or SRAM), fall back to the paid
                    // budget and finally to the original split that
                    // rebalance() already proved feasible.
                    const PlacementRequest cur = demands[mv.tenant];
                    placer.release(mv.to, cur);
                    const CoreCapacity &cap = placer.cores()[mv.to];
                    const unsigned paid =
                        config.tenants[mv.tenant].eus;
                    const unsigned grown = std::max(
                        paid,
                        std::min(cap.freeEus(),
                                 static_cast<unsigned>(
                                     paid *
                                     config.elastic.growFactor)));
                    bool committed = false;
                    for (unsigned budget : {grown, paid}) {
                        VnpuSizing updated = sizings[mv.tenant];
                        if (!resplitForResidency(updated, budget,
                                                 cap.freeMes,
                                                 cap.freeVes,
                                                 core_cfg))
                            continue;
                        PlacementRequest resized = cur;
                        resized.nMes = updated.config.numMesPerCore;
                        resized.nVes = updated.config.numVesPerCore;
                        resized.sramBytes =
                            updated.config.sramSizePerCore;
                        if (placer.commit(mv.to, resized)) {
                            sizings[mv.tenant] = updated;
                            pl.nMes = resized.nMes;
                            pl.nVes = resized.nVes;
                            committed = true;
                            break;
                        }
                    }
                    if (!committed) {
                        const bool ok = placer.commit(mv.to, cur);
                        NEU10_ASSERT(ok, "migrated vNPU no longer "
                                         "fits its destination core");
                    }
                }
                // The move itself is hypercall traffic: destroy
                // frees the MMIO window and IOMMU attachment, the
                // pinned create on the destination reuses them.
                hv.hcDestroyVnpu(static_cast<TenantId>(mv.tenant),
                                 vnpu_ids[mv.tenant]);
                vnpu_ids[mv.tenant] = hv.hcCreateVnpu(
                    static_cast<TenantId>(mv.tenant),
                    sizings[mv.tenant].config,
                    IsolationMode::Hardware, mv.to);
                pl.core = mv.to;
                ++pl.migrations;
                migrated[mv.tenant] = true;
            }
            er.migrations = static_cast<unsigned>(moves.size());
            result.migrations += static_cast<unsigned>(moves.size());
        }
        result.epochReports.push_back(er);
    }

    // ---- fleet-wide makespan and per-core reports -----------------
    result.makespan = config.horizon;
    for (CoreId c = 0; c < num_cores; ++c)
        result.makespan = std::max(result.makespan, core_live[c]);

    std::vector<unsigned> final_tenants(num_cores, 0);
    for (size_t i = 0; i < num_tenants; ++i)
        if (result.placements[i].placed())
            ++final_tenants[result.placements[i].core];

    result.cores.resize(num_cores);
    for (CoreId c = 0; c < num_cores; ++c) {
        FleetCoreReport &rep = result.cores[c];
        rep.core = c;
        rep.board = c / cores_per_board;
        rep.tenants = final_tenants[c];
        rep.completed = core_completed[c];
        rep.makespan = core_live[c];
        // Busy cycles over the fleet makespan, so cores that drained
        // early (or stood empty for epochs) compare fairly.
        rep.meUsefulUtil = me_busy[c] / result.makespan;
        rep.veUtil = ve_busy[c] / result.makespan;
        rep.euUtil = (rep.meUsefulUtil * core_cfg.numMes +
                      rep.veUtil * core_cfg.numVes) /
                     (core_cfg.numMes + core_cfg.numVes);
        result.coreMeUtil.add(rep.meUsefulUtil);
        result.coreEuUtil.add(rep.euUtil);
    }

    // ---- fleet-wide SLO accounting --------------------------------
    const double secs =
        clock.toSeconds(std::max(1.0, result.makespan));
    for (size_t i = 0; i < num_tenants; ++i) {
        TenantResult &tr = result.tenants[i];
        // Rates over the fleet makespan (not any one core's window),
        // so tenants on early-draining cores are not flattered.
        tr.throughput = tr.completed / secs;
        tr.goodput = tr.sloMet / secs;
        tr.blockedFrac =
            blocked_cycles[i] / std::max(1.0, result.makespan);
        result.submitted += tr.submitted;
        result.completed += tr.completed;
        result.rejected += tr.rejected;
        result.sloMet += tr.sloMet;
        result.latencyCycles.merge(tr.latencyCycles);
    }
    result.goodput = result.sloMet / secs;

    // Tear every surviving vNPU down through the hypercall path.
    for (size_t i = 0; i < num_tenants; ++i)
        if (vnpu_ids[i] != kInvalidVnpu)
            hv.hcDestroyVnpu(static_cast<TenantId>(i), vnpu_ids[i]);
    return result;
}

} // namespace neu10
