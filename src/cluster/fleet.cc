#include "cluster/fleet.hh"

#include <algorithm>
#include <utility>

#include "common/annotations.hh"
#include "common/env.hh"
#include "common/logging.hh"
#include "common/threadpool.hh"
#include "resilience/checkpoint.hh"
#include "sim/clock.hh"
#include "virt/hypervisor.hh"
#include "vnpu/allocator.hh"

namespace neu10
{

namespace
{

/**
 * Collects the epoch's per-core serving results from pool workers.
 *
 * Workers finish in host-scheduling order, but results are keyed by
 * the occupied-core index and the aggregation below walks them in
 * that order, so the fleet outcome stays bit-identical at any thread
 * width. The mutex makes the hand-off from worker to aggregator a
 * checked invariant (clang -Wthread-safety) instead of a comment:
 * workers only write through record(), and the aggregator can only
 * get the results back through take(), which asserts every core
 * reported.
 */
class EpochRunCollector
{
  public:
    explicit EpochRunCollector(std::size_t cores) : done_(cores) {}

    /** Store core-index @p k's result (called from pool workers). */
    void record(std::size_t k, ServingResult &&r) NEU10_EXCLUDES(mutex_)
    {
        MutexLock lock(mutex_);
        NEU10_ASSERT(k < done_.size(), "core index out of range");
        done_[k] = std::move(r);
        ++recorded_;
    }

    /** Move the complete result set out (after the parallelFor
     * barrier, on the aggregation thread). */
    std::vector<ServingResult> take() NEU10_EXCLUDES(mutex_)
    {
        MutexLock lock(mutex_);
        NEU10_ASSERT(recorded_ == done_.size(),
                     "epoch aggregation started before every core "
                     "reported (%zu of %zu)", recorded_, done_.size());
        recorded_ = 0;
        return std::move(done_);
    }

  private:
    Mutex mutex_;
    std::vector<ServingResult> done_ NEU10_GUARDED_BY(mutex_);
    std::size_t recorded_ NEU10_GUARDED_BY(mutex_) = 0;
};

} // anonymous namespace

FleetResult
runFleet(const FleetConfig &config)
{
    NEU10_ASSERT(!config.tenants.empty(), "fleet needs tenants");
    NEU10_ASSERT(config.totalCores() > 0, "fleet needs cores");
    NEU10_ASSERT(config.elastic.epochs >= 1,
                 "fleet needs at least one epoch");
    const bool llm_mode =
        config.servingMode == ServingMode::LlmContinuous;
    NEU10_ASSERT(!llm_mode || config.elastic.epochs == 1,
                 "LLM serving requires elastic.epochs == 1 (sequence "
                 "lengths are seed-drawn per run and cannot carry "
                 "across epoch boundaries)");

    const NpuCoreConfig &core_cfg = config.board.core;
    const unsigned cores_per_board = config.board.totalCores();
    const unsigned num_cores = config.totalCores();
    const size_t num_tenants = config.tenants.size();
    const Clock clock(core_cfg.freqHz);

    FleetResult result;
    result.policy = policyName(config.corePolicy);
    result.placement = placementName(config.placement);
    result.placements.resize(num_tenants);
    result.tenants.resize(num_tenants);

    // ---- fold the injected fault trace into a queryable timeline --
    const FleetTopology topo{config.numBoards, cores_per_board};
    const FaultTimeline timeline(config.resilience.faults, topo);
    for (const FaultEvent &ev : timeline.events())
        if (ev.at < config.horizon && ev.kind != FaultKind::Repair)
            ++result.faultsInjected;

    // ---- observability: merged trace + epoch-sampled metrics ------
    // Controller-track events are recorded serially (epoch loop and
    // boundary controllers only) in absolute cycles into `ctl` and
    // appended to the merged trace once, after the last epoch.
    const bool tracing = config.trace.enabled;
    result.trace.setTopology(cores_per_board, config.numBoards);
    result.trace.setFreqHz(core_cfg.freqHz);
    TraceBuffer ctl(tracing);
    if (tracing)
        timeline.emitTrace(result.trace, config.horizon);
    MetricsRegistry &mx = result.metrics;
    mx.enable(tracing && config.trace.metrics);
    const MetricId mx_completed = mx.counter("fleet.completed");
    const MetricId mx_backlog = mx.gauge("fleet.backlog");
    const MetricId mx_migrations = mx.counter("fleet.migrations");
    const MetricId mx_failures = mx.counter("fleet.failures");
    const MetricId mx_restores = mx.counter("fleet.restores");
    const MetricId mx_pressure = mx.gauge("fleet.pressure_stddev");
    const MetricId mx_pending = mx.gauge("fleet.pending_checkpoints");
    const MetricId mx_epoch_done = mx.histogram("fleet.epoch_completed");
    // LLM-mode metrics are registered only when the mode is active so
    // the exported metric set (and trace goldens) of request-serving
    // runs is unchanged.
    MetricId mx_llm_tokens = 0, mx_llm_prefills = 0;
    MetricId mx_llm_decode = 0, mx_llm_preempt = 0, mx_llm_occ = 0;
    if (llm_mode) {
        mx_llm_tokens = mx.counter("llm.tokens");
        mx_llm_prefills = mx.counter("llm.prefills");
        mx_llm_decode = mx.counter("llm.decode_iterations");
        mx_llm_preempt = mx.counter("llm.preemptions");
        mx_llm_occ = mx.gauge("llm.kv_occupancy");
    }

    // ---- size every vNPU and bin-pack the fleet -------------------
    // Placement is fault-oblivious: the trace is the future, and the
    // provisioning path does not get to peek at it. Tenants landing
    // on a doomed core are exactly what the failover controller is
    // for.
    FleetPlacer placer(num_cores, core_cfg);
    std::vector<VnpuSizing> sizings(num_tenants);
    // The load each placed tenant's *current* commit charged on the
    // placer's books: the offered estimate at initial placement, the
    // observed pressure after a rebalance move, the checkpointed
    // load after a restore. Load is advisory, but releasing exactly
    // what was committed keeps a repaired core's books from drifting
    // for the rest of the run.
    std::vector<double> committed_load(num_tenants, 0.0);
    for (size_t i = 0; i < num_tenants; ++i) {
        const ClusterTenantSpec &spec = config.tenants[i];
        sizings[i] = sizeVnpuForModel(spec.model, spec.batch,
                                      spec.eus, core_cfg);
        const VnpuSizing &sizing = sizings[i];

        TenantPlacement &pl = result.placements[i];
        pl.nMes = sizing.config.numMesPerCore;
        pl.nVes = sizing.config.numVesPerCore;
        pl.hbmBytes = sizing.config.memSizePerCore;
        // Offered load: requests/s x busy EU-cycles per request,
        // expressed in EU-cycles per cycle.
        pl.load = spec.traffic.ratePerSec *
                  (sizing.profile.meBusy + sizing.profile.veBusy) /
                  core_cfg.freqHz;

        PlacementRequest req;
        req.nMes = pl.nMes;
        req.nVes = pl.nVes;
        req.hbmBytes = pl.hbmBytes;
        req.sramBytes = sizing.config.sramSizePerCore;
        req.load = pl.load;
        pl.core = placer.place(req, config.placement);
        committed_load[i] = pl.load;
        if (pl.placed())
            ctl.instant(0.0, "fleet", "place", "tenant", i, "core",
                        pl.core);
        else
            ctl.instant(0.0, "fleet", "unplaced", "tenant", i);
        if (!pl.placed())
            ++result.unplacedTenants;
    }

    // One tenant's demand as the placer sees it. Engine/memory
    // fields mirror the current commit exactly; the advisory load
    // field is whatever the caller charges (rebalance() internally
    // releases a mover's *observed* pressure from its source, so
    // load books drift there by design — see its doc).
    auto requestFor = [&](size_t i, double load) {
        const TenantPlacement &pl = result.placements[i];
        PlacementRequest req;
        req.nMes = pl.nMes;
        req.nVes = pl.nVes;
        req.hbmBytes = pl.hbmBytes;
        req.sramBytes = sizings[i].config.sramSizePerCore;
        req.load = load;
        return req;
    };

    // ---- install every placed vNPU through the hypervisor ---------
    // One hypervisor spans the fleet (to it, the boards are one big
    // inventory with the same core ordering as the placer). Later
    // migrations travel its destroy/create hypercalls and failures
    // its bulk core revocation, so long-lived runs churn — and
    // recycle — the MMIO aperture exactly as a production host would.
    NpuBoardConfig fleet_board = config.board;
    fleet_board.numChips = config.numBoards * config.board.numChips;
    Hypervisor hv(fleet_board);
    if (tracing)
        hv.setTrace(&ctl);
    std::vector<VnpuId> vnpu_ids(num_tenants, kInvalidVnpu);
    for (size_t i = 0; i < num_tenants; ++i) {
        if (result.placements[i].placed())
            vnpu_ids[i] = hv.hcCreateVnpu(
                static_cast<TenantId>(i), sizings[i].config,
                IsolationMode::Hardware, result.placements[i].core);
    }

    // ---- generate traffic (seeded, epoch-independent) -------------
    std::vector<std::vector<Cycles>> arrivals(num_tenants);
    for (size_t i = 0; i < num_tenants; ++i) {
        arrivals[i] = generateArrivals(config.tenants[i].traffic,
                                       config.horizon,
                                       core_cfg.freqHz);
        if (!result.placements[i].placed()) {
            // The fleet turned the tenant away: every request of its
            // stream counts as submitted and rejected.
            TenantResult &tr = result.tenants[i];
            tr.model = modelAbbrev(config.tenants[i].model);
            tr.submitted = arrivals[i].size();
            tr.rejected = arrivals[i].size();
        }
    }

    // ---- epoch loop: simulate, observe, fail over, rebalance ------
    const unsigned epochs = config.elastic.epochs;
    const Cycles window = config.horizon / epochs;
    // NEU10_FLEET_THREADS overrides the configured width (results are
    // bit-identical at any width, so this is safe everywhere). The
    // TSan CI cell sets it to force real concurrency through tests
    // whose configs default to serial.
    ThreadPool pool(static_cast<unsigned>(
        envUint64("NEU10_FLEET_THREADS", config.threads)));

    // Compile every placed tenant's binary exactly once; epochs and
    // host threads share the read-only programs (NeuISA binaries are
    // compiled against the physical core shape, so resized engine
    // grants execute the same code, §III-D).
    // LLM serving prices phases analytically (no compiled program).
    std::vector<CompiledModel> programs(num_tenants);
    pool.parallelFor(num_tenants, [&](size_t i) {
        if (llm_mode || !result.placements[i].placed())
            return;
        TenantSpec ts;
        ts.model = config.tenants[i].model;
        ts.batch = config.tenants[i].batch;
        programs[i] = compileFor(ts, config.corePolicy, core_cfg);
    });

    std::vector<std::vector<Cycles>> carried(num_tenants);
    // Submission hold charged at the next epoch's start: the
    // migration cost for freshly moved vNPUs, the recovery stall for
    // freshly restored ones.
    std::vector<Cycles> stall_next(num_tenants, 0.0);
    std::vector<size_t> next_arrival(num_tenants, 0);
    std::vector<double> blocked_cycles(num_tenants, 0.0);
    std::vector<double> me_busy(num_cores, 0.0);
    std::vector<double> ve_busy(num_cores, 0.0);
    std::vector<Cycles> core_live(num_cores, 0.0);
    std::vector<std::uint64_t> core_completed(num_cores, 0);

    // Failover state: checkpoints awaiting a restore slot, in fault-
    // detection order (epoch, then failed-core index, then resident
    // order) — which is also the priority when restore capacity is
    // scarce — and the running MTTR sum.
    std::vector<VnpuCheckpoint> pending;
    Cycles mttr_sum = 0.0;

    // Abandon a failed tenant for good: its checkpointed backlog and
    // every not-yet-delivered arrival are lost (counted as rejected
    // too, so request conservation holds), and it stays down to the
    // end of the horizon. @p when is the decision instant (the epoch
    // boundary giving up on the restore, or the horizon) — trace
    // bookkeeping only; the loss accounting is time-independent.
    auto abandon = [&](const VnpuCheckpoint &ckpt, Cycles when) {
        const size_t i = ckpt.tenant;
        TenantResult &tr = result.tenants[i];
        const std::uint64_t lost_arrivals =
            arrivals[i].size() - next_arrival[i];
        next_arrival[i] = arrivals[i].size();
        const std::uint64_t lost =
            ckpt.backlog.size() + lost_arrivals;
        tr.submitted += lost_arrivals;
        tr.rejected += lost;
        tr.lostRequests += lost;
        tr.downtimeCycles += config.horizon - ckpt.faultAt;
        ctl.instant(when, "resilience", "abandon", "tenant", i,
                    "lost", static_cast<double>(lost));
    };

    for (unsigned e = 0; e < epochs; ++e) {
        const Cycles start = e * window;
        const Cycles epoch_end = start + window;
        const bool last = (e + 1 == epochs);

        std::vector<std::vector<size_t>> residents(num_cores);
        for (size_t i = 0; i < num_tenants; ++i)
            if (result.placements[i].placed())
                residents[result.placements[i].core].push_back(i);

        // Fatal fault onsets taking cores down inside this epoch's
        // window. The sim is stopped at the onset (the host only
        // *acts* at the boundary, but a dead core executes nothing);
        // arrivals past the onset stay queued in the stream and are
        // delivered to the restored vNPU later.
        std::vector<Cycles> fatal_abs(num_cores, kCyclesInf);
        for (CoreId c = 0; c < num_cores; ++c) {
            fatal_abs[c] = timeline.fatalOnset(c, start, epoch_end);
            if (fatal_abs[c] < kCyclesInf)
                ++result.coreFailures;
        }

        std::vector<CoreId> occupied;
        for (CoreId c = 0; c < num_cores; ++c) {
            if (residents[c].empty())
                continue;
            // An onset coinciding exactly with the epoch start kills
            // the core before it executes a single cycle: running a
            // zero-length simulation would fire no events at all and
            // silently drop the carried backlog, so skip the run —
            // carried[] still holds the residents' admitted work
            // (stamps relative to this epoch) and the boundary
            // checkpoints it below like any other fault.
            // neu10-lint: allow(float-eq): onset stamps propagate
            // untouched from the fault trace, so coincidence with the
            // epoch start is exact, never computed.
            if (fatal_abs[c] == start)
                continue;
            occupied.push_back(c);
        }

        std::vector<ServingConfig> runs(occupied.size());
        for (size_t k = 0; k < occupied.size(); ++k) {
            const CoreId c = occupied[k];
            const bool faulted = fatal_abs[c] < kCyclesInf;
            const Cycles stop_abs =
                faulted ? fatal_abs[c]
                        : (last ? kCyclesInf : epoch_end);
            // Transient MMIO/DMA retries hitting this core before it
            // (possibly) dies, charged as an epoch-start submission
            // hold on every resident.
            const Cycles transient = timeline.transientStall(
                c, start, std::min(stop_abs, config.horizon));
            result.transientFaults += timeline.transientCount(
                c, start, std::min(stop_abs, config.horizon));

            ServingConfig &sc = runs[k];
            sc.core = core_cfg;
            sc.policy = config.corePolicy;
            sc.mode = config.servingMode;
            sc.llm = config.llm;
            sc.engine = config.engine;
            sc.maxCycles = config.maxCycles;
            sc.trace = config.trace;
            sc.stopAtCycles =
                faulted ? fatal_abs[c] - start
                        : (last ? kCyclesInf : window);
            for (size_t i : residents[c]) {
                const ClusterTenantSpec &spec = config.tenants[i];
                const TenantPlacement &pl = result.placements[i];
                TenantSpec ts;
                ts.model = spec.model;
                ts.batch = spec.batch;
                ts.nMes = pl.nMes;
                ts.nVes = pl.nVes;
                ts.priority = spec.priority;
                ts.maxQueueDepth = spec.maxQueueDepth;
                ts.sloCycles = spec.sloCycles;
                ts.program = llm_mode ? nullptr : &programs[i];
                // The KV pool is carved from the placement's actual
                // (segment-rounded) HBM reservation; the length
                // stream reuses the traffic seed through a fixed
                // mix so arrivals and lengths stay decorrelated.
                ts.hbmBytes = pl.hbmBytes;
                ts.llmSeed =
                    spec.traffic.seed ^ 0x6c6c6d5f6e657531ull;
                // Carried backlog resumes here; a freshly migrated
                // or restored vNPU additionally stalls for its move
                // or recovery cost, and transient faults add their
                // retry stall on top.
                ts.backlog = std::move(carried[i]);
                carried[i].clear();
                ts.startOffsetCycles = stall_next[i] + transient;
                stall_next[i] = 0.0;
                while (next_arrival[i] < arrivals[i].size() &&
                       arrivals[i][next_arrival[i]] < stop_abs) {
                    // Stamps can fall before this epoch's start
                    // (arrivals held through an outage): the serving
                    // loop delivers them at t = 0 with the original
                    // stamp priced into latency.
                    ts.arrivals.push_back(
                        arrivals[i][next_arrival[i]] - start);
                    ++next_arrival[i];
                }
                sc.tenants.push_back(std::move(ts));
            }
        }

        // Per-core simulations are independent; workers hand results
        // to the collector keyed by core index and aggregation below
        // walks cores in index order, so any thread count gives
        // identical results.
        EpochRunCollector collector(occupied.size());
        pool.parallelFor(occupied.size(), [&](size_t k) {
            // Worker messages (cap warnings etc.) carry a
            // "[board.core @cycle]" prefix while this core runs.
            const CoreId c = occupied[k];
            ScopedLogContext log_ctx(c / cores_per_board,
                                     c % cores_per_board);
            collector.record(k, runServing(runs[k]));
        });
        const std::vector<ServingResult> done = collector.take();

        // ---- aggregate the epoch (serial, core-index order) -------
        FleetEpochReport er;
        er.epoch = e;
        // The controller's epoch span covers the window — or, in the
        // final (draining) epoch, out to the slowest core's drain.
        Cycles epoch_span_end = epoch_end;
        std::uint64_t llm_tokens = 0, llm_prefills = 0;
        std::uint64_t llm_decode = 0, llm_preempt = 0;
        double llm_occ_sum = 0.0;
        unsigned llm_endpoints = 0;
        std::vector<double> pressure(num_cores, 0.0);
        std::vector<double> tenant_pressure(num_tenants, 0.0);
        for (size_t k = 0; k < occupied.size(); ++k) {
            const CoreId c = occupied[k];
            const bool faulted = fatal_abs[c] < kCyclesInf;
            const ServingResult &r = done[k];
            const Cycles measured = std::max(1.0, r.makespan);
            if (tracing)
                result.trace.append(
                    static_cast<int>(c), r.trace, start,
                    static_cast<std::uint64_t>(e + 1) << 56);
            if (last)
                epoch_span_end =
                    std::max(epoch_span_end, start + r.makespan);
            me_busy[c] += r.meUsefulUtil * measured;
            ve_busy[c] += r.veUtil * measured;
            core_live[c] += faulted ? fatal_abs[c] - start
                                    : (last ? r.makespan : window);
            for (size_t t = 0; t < residents[c].size(); ++t) {
                const size_t i = residents[c][t];
                const TenantResult &tr = r.tenants[t];
                TenantResult &acc = result.tenants[i];
                acc.model = tr.model;
                acc.submitted += tr.submitted;
                acc.rejected += tr.rejected;
                acc.completed += tr.completed;
                acc.sloMet += tr.sloMet;
                acc.reclaims += tr.reclaims;
                acc.latencyCycles.merge(tr.latencyCycles);
                if (llm_mode) {
                    // Single-epoch by construction (asserted above),
                    // so the time-weighted means copy through
                    // unweighted.
                    LlmEndpointStats &al = acc.llm;
                    const LlmEndpointStats &el = tr.llm;
                    al.tokensGenerated += el.tokensGenerated;
                    al.prefills += el.prefills;
                    al.decodeIterations += el.decodeIterations;
                    al.preemptions += el.preemptions;
                    al.kvPages = el.kvPages;
                    al.kvPageHighWater = std::max(
                        al.kvPageHighWater, el.kvPageHighWater);
                    al.kvAllocOps += el.kvAllocOps;
                    al.kvFreeOps += el.kvFreeOps;
                    al.kvFailedAllocs += el.kvFailedAllocs;
                    al.kvOccupancyMean = el.kvOccupancyMean;
                    al.kvFragMean = el.kvFragMean;
                    al.ttftCycles.merge(el.ttftCycles);
                    llm_tokens += el.tokensGenerated;
                    llm_prefills += el.prefills;
                    llm_decode += el.decodeIterations;
                    llm_preempt += el.preemptions;
                    llm_occ_sum += el.kvOccupancyMean;
                    ++llm_endpoints;
                }
                blocked_cycles[i] += tr.blockedFrac * measured;
                core_completed[c] += tr.completed;
                er.completed += tr.completed;
                er.backlog += tr.backlog.size();
                if (faulted) {
                    // The core died under this tenant: park its
                    // admitted-but-unserved work in carried[] (kept
                    // relative to *this* epoch's start) for the
                    // boundary below to checkpoint — it decides
                    // whether the work is restored or lost.
                    carried[i] = tr.backlog;
                } else {
                    // Carry admitted-but-unserved work into the next
                    // epoch, restamped relative to its start.
                    for (Cycles stamp : tr.backlog)
                        carried[i].push_back(stamp - window);
                }
                // The pressure this tenant demonstrably exerted:
                // work it got through *plus* work it left queued,
                // in busy EU-cycles per cycle of the epoch.
                tenant_pressure[i] =
                    (tr.completed + tr.backlog.size()) *
                    (sizings[i].profile.meBusy +
                     sizings[i].profile.veBusy) /
                    window;
                pressure[c] += tenant_pressure[i];
            }
        }
        {
            Distribution pdist;
            for (CoreId c = 0; c < num_cores; ++c)
                pdist.add(pressure[c]);
            er.pressureStddev = pdist.stddev();
        }

        // Boundary bookkeeping happens "at" the epoch's end: stamp
        // the hypervisor's control-plane events accordingly.
        hv.setTraceNow(epoch_end);

        // ---- failover controller at the epoch boundary ------------
        // Evict the dead cores' vNPUs (bulk host-side revocation:
        // MMIO windows and IOMMU attachments recycle exactly once),
        // refresh quarantine from the timeline, then try to restore
        // every pending checkpoint on the surviving capacity.
        for (CoreId c = 0; c < num_cores; ++c) {
            // neu10-lint: allow(float-eq): kCyclesInf is an exact
            // sentinel (infinity), not a computed value.
            if (fatal_abs[c] == kCyclesInf)
                continue;
            ++er.failures;
            if (residents[c].empty())
                continue;
            for (size_t i : residents[c]) {
                placer.release(c, requestFor(i, committed_load[i]));
                // Checkpoint the admitted-but-unserved work: the
                // fault-stopped run's backlog (or, for a core dead
                // from the epoch's first cycle, the untouched
                // carry-in), parked in carried[] with stamps
                // relative to this epoch.
                pending.push_back(captureCheckpoint(
                    i, static_cast<TenantId>(i), c, fatal_abs[c],
                    config.tenants[i].eus, sizings[i], &programs[i],
                    committed_load[i], carried[i], start));
                ctl.instant(epoch_end, "resilience", "checkpoint",
                            "tenant", i, "core", c, "backlog",
                            static_cast<double>(carried[i].size()));
                carried[i].clear();
            }
            const auto revoked = hv.hcRevokeCore(c);
            NEU10_ASSERT(revoked.size() == residents[c].size(),
                         "core %u revocation missed a vNPU", c);
            for (const auto &rv : revoked) {
                NEU10_ASSERT(vnpu_ids[rv.tenant] == rv.id,
                             "revoked vNPU %u does not match tenant "
                             "%u's instance", rv.id, rv.tenant);
                vnpu_ids[rv.tenant] = kInvalidVnpu;
                result.placements[rv.tenant].core = kInvalidCore;
            }
        }
        std::vector<bool> just_restored(num_tenants, false);
        if (!last) {
            const Cycles now = epoch_end;
            for (CoreId c = 0; c < num_cores; ++c) {
                const bool down = timeline.downAt(c, now);
                placer.setQuarantined(c, down);
                if (down)
                    ctl.instant(now, "resilience", "quarantine",
                                "core", c);
            }

            if (config.resilience.failover) {
                std::vector<VnpuCheckpoint> still;
                for (VnpuCheckpoint &ckpt : pending) {
                    RestoreOutcome out = restoreCheckpoint(
                        ckpt, placer, hv, config.placement, core_cfg);
                    if (!out.restored()) {
                        still.push_back(std::move(ckpt));
                        continue;
                    }
                    const size_t i = ckpt.tenant;
                    just_restored[i] = true;
                    ctl.instant(now, "resilience", "restore",
                                "tenant", i, "core", out.core,
                                "backlog",
                                static_cast<double>(
                                    ckpt.backlog.size()));
                    vnpu_ids[i] = out.vnpu;
                    sizings[i] = ckpt.sizing;
                    committed_load[i] = ckpt.load;
                    TenantPlacement &pl = result.placements[i];
                    pl.core = out.core;
                    pl.nMes = out.nMes;
                    pl.nVes = out.nVes;
                    for (Cycles stamp : ckpt.backlog)
                        carried[i].push_back(stamp - now);
                    stall_next[i] =
                        config.resilience.recoveryStallCycles;
                    TenantResult &tr = result.tenants[i];
                    ++tr.failovers;
                    ++result.failovers;
                    ++er.restores;
                    // Recovered: the checkpointed backlog plus the
                    // arrivals held through the outage — everything
                    // a failover-less fleet would have dropped that
                    // now gets its chance (late) at service.
                    std::uint64_t held = 0;
                    for (size_t a = next_arrival[i];
                         a < arrivals[i].size() &&
                         arrivals[i][a] < now;
                         ++a)
                        ++held;
                    tr.recoveredRequests +=
                        ckpt.backlog.size() + held;
                    const Cycles repaired =
                        (now - ckpt.faultAt) +
                        config.resilience.recoveryStallCycles;
                    tr.downtimeCycles += repaired;
                    mttr_sum += repaired;
                }
                pending = std::move(still);
            } else {
                for (const VnpuCheckpoint &ckpt : pending)
                    abandon(ckpt, epoch_end);
                pending.clear();
            }
        }

        // ---- elastic rebalance at the epoch boundary --------------
        if (!last && epochs > 1) {
            std::vector<CoreId> where(num_tenants, kInvalidCore);
            std::vector<PlacementRequest> demands(num_tenants);
            for (size_t i = 0; i < num_tenants; ++i) {
                where[i] = result.placements[i].core;
                demands[i] = requestFor(i, tenant_pressure[i]);
            }
            RebalanceOptions opts;
            opts.imbalanceThreshold =
                config.elastic.imbalanceThreshold;
            opts.maxMigrations = config.elastic.maxMigrationsPerEpoch;
            const std::vector<Migration> moves =
                placer.rebalance(pressure, where, demands, opts);

            // rebalance() applied every planned move to the placer's
            // books at once, so the grown re-splits below see the
            // post-rebalance residency. Mirror that in the manager
            // before any re-create: destroy every mover first —
            // otherwise a grant grown into EUs a *later* move is
            // about to vacate would exceed the destination's current
            // occupancy and the pinned create would (rightly) refuse.
            for (const Migration &mv : moves)
                hv.hcDestroyVnpu(static_cast<TenantId>(mv.tenant),
                                 vnpu_ids[mv.tenant]);

            for (const Migration &mv : moves) {
                TenantPlacement &pl = result.placements[mv.tenant];
                if (config.elastic.resizeOnMigrate) {
                    // Re-run the §III-B split against the
                    // destination's residency: free engines there
                    // once this vNPU's committed share is set aside.
                    // The grant may grow into idle EUs (growFactor);
                    // when the grown or re-split request no longer
                    // fits (engines or SRAM), fall back to the paid
                    // budget and finally to the original split that
                    // rebalance() already proved feasible.
                    const PlacementRequest cur = demands[mv.tenant];
                    placer.release(mv.to, cur);
                    const CoreCapacity &cap = placer.cores()[mv.to];
                    const unsigned paid =
                        config.tenants[mv.tenant].eus;
                    const unsigned grown = std::max(
                        paid,
                        std::min(cap.freeEus(),
                                 static_cast<unsigned>(
                                     paid *
                                     config.elastic.growFactor)));
                    bool committed = false;
                    for (unsigned budget : {grown, paid}) {
                        VnpuSizing updated = sizings[mv.tenant];
                        if (!resplitForResidency(updated, budget,
                                                 cap.freeMes,
                                                 cap.freeVes,
                                                 core_cfg))
                            continue;
                        PlacementRequest resized = cur;
                        resized.nMes = updated.config.numMesPerCore;
                        resized.nVes = updated.config.numVesPerCore;
                        resized.sramBytes =
                            updated.config.sramSizePerCore;
                        if (placer.commit(mv.to, resized)) {
                            sizings[mv.tenant] = updated;
                            pl.nMes = resized.nMes;
                            pl.nVes = resized.nVes;
                            committed = true;
                            break;
                        }
                    }
                    if (!committed) {
                        const bool ok = placer.commit(mv.to, cur);
                        NEU10_ASSERT(ok, "migrated vNPU no longer "
                                         "fits its destination core");
                    }
                }
                // The move itself is hypercall traffic: the destroy
                // above freed the MMIO window and IOMMU attachment,
                // the pinned create on the destination reuses them.
                vnpu_ids[mv.tenant] = hv.hcCreateVnpu(
                    static_cast<TenantId>(mv.tenant),
                    sizings[mv.tenant].config,
                    IsolationMode::Hardware, mv.to);
                ctl.instant(epoch_end, "fleet", "migrate", "tenant",
                            mv.tenant, "from", mv.from, "to", mv.to);
                pl.core = mv.to;
                ++pl.migrations;
                committed_load[mv.tenant] = demands[mv.tenant].load;
                // Accumulate, don't overwrite: a vNPU restored at
                // this same boundary already owes its recovery
                // stall, and moving it again adds the migration on
                // top. Keep the MTTR/downtime books equal to the
                // stall actually simulated.
                stall_next[mv.tenant] +=
                    config.elastic.migrationCostCycles;
                if (just_restored[mv.tenant]) {
                    result.tenants[mv.tenant].downtimeCycles +=
                        config.elastic.migrationCostCycles;
                    mttr_sum += config.elastic.migrationCostCycles;
                }
            }
            er.migrations = static_cast<unsigned>(moves.size());
            result.migrations += static_cast<unsigned>(moves.size());
        }
        ctl.span(start, epoch_span_end, "fleet", "epoch", "completed",
                 static_cast<double>(er.completed), "backlog",
                 static_cast<double>(er.backlog));
        mx.add(mx_completed, static_cast<double>(er.completed));
        mx.set(mx_backlog, static_cast<double>(er.backlog));
        mx.add(mx_migrations, er.migrations);
        mx.add(mx_failures, er.failures);
        mx.add(mx_restores, er.restores);
        mx.set(mx_pressure, er.pressureStddev);
        mx.set(mx_pending, static_cast<double>(pending.size()));
        if (llm_mode) {
            mx.add(mx_llm_tokens, static_cast<double>(llm_tokens));
            mx.add(mx_llm_prefills,
                   static_cast<double>(llm_prefills));
            mx.add(mx_llm_decode, static_cast<double>(llm_decode));
            mx.add(mx_llm_preempt, static_cast<double>(llm_preempt));
            mx.set(mx_llm_occ,
                   llm_endpoints > 0 ? llm_occ_sum / llm_endpoints
                                     : 0.0);
        }
        mx.observe(mx_epoch_done, static_cast<double>(er.completed));
        mx.sample(epoch_span_end);
        result.epochReports.push_back(er);
    }

    // Tenants never restored (failover off handled them already;
    // here: no capacity found by the end, or the fault hit the final
    // epoch) lose their checkpointed work and any undelivered
    // arrivals.
    for (const VnpuCheckpoint &ckpt : pending)
        abandon(ckpt, config.horizon);
    pending.clear();

    // ---- fleet-wide makespan and per-core reports -----------------
    result.makespan = config.horizon;
    for (CoreId c = 0; c < num_cores; ++c)
        result.makespan = std::max(result.makespan, core_live[c]);

    std::vector<unsigned> final_tenants(num_cores, 0);
    for (size_t i = 0; i < num_tenants; ++i)
        if (result.placements[i].placed())
            ++final_tenants[result.placements[i].core];

    Cycles fleet_down = 0.0;
    result.cores.resize(num_cores);
    for (CoreId c = 0; c < num_cores; ++c) {
        FleetCoreReport &rep = result.cores[c];
        rep.core = c;
        rep.board = c / cores_per_board;
        rep.tenants = final_tenants[c];
        rep.completed = core_completed[c];
        rep.makespan = core_live[c];
        rep.downCycles = timeline.downCycles(c, 0.0, config.horizon);
        fleet_down += rep.downCycles;
        // Busy cycles over the fleet makespan, so cores that drained
        // early (or stood empty for epochs) compare fairly.
        rep.meUsefulUtil = me_busy[c] / result.makespan;
        rep.veUtil = ve_busy[c] / result.makespan;
        rep.euUtil = (rep.meUsefulUtil * core_cfg.numMes +
                      rep.veUtil * core_cfg.numVes) /
                     (core_cfg.numMes + core_cfg.numVes);
        result.coreMeUtil.add(rep.meUsefulUtil);
        result.coreEuUtil.add(rep.euUtil);
    }
    result.availability =
        1.0 - fleet_down / (static_cast<double>(num_cores) *
                            config.horizon);
    result.mttrCycles =
        result.failovers > 0 ? mttr_sum / result.failovers : 0.0;

    // ---- fleet-wide SLO accounting --------------------------------
    const double secs =
        clock.toSeconds(std::max(1.0, result.makespan));
    for (size_t i = 0; i < num_tenants; ++i) {
        TenantResult &tr = result.tenants[i];
        // Rates over the fleet makespan (not any one core's window),
        // so tenants on early-draining cores are not flattered.
        tr.throughput = tr.completed / secs;
        tr.goodput = tr.sloMet / secs;
        tr.llm.tokensPerSecond =
            static_cast<double>(tr.llm.tokensGenerated) / secs;
        tr.blockedFrac =
            blocked_cycles[i] / std::max(1.0, result.makespan);
        result.submitted += tr.submitted;
        result.completed += tr.completed;
        result.rejected += tr.rejected;
        result.sloMet += tr.sloMet;
        result.lostRequests += tr.lostRequests;
        result.recoveredRequests += tr.recoveredRequests;
        result.downtimeCycles += tr.downtimeCycles;
        result.latencyCycles.merge(tr.latencyCycles);
    }
    result.goodput = result.sloMet / secs;

    // Tear every surviving vNPU down through the hypercall path.
    hv.setTraceNow(result.makespan);
    for (size_t i = 0; i < num_tenants; ++i)
        if (vnpu_ids[i] != kInvalidVnpu)
            hv.hcDestroyVnpu(static_cast<TenantId>(i), vnpu_ids[i]);

    if (tracing)
        result.trace.append(Trace::kControllerTrack, ctl, 0.0, 0);
    return result;
}

} // namespace neu10
