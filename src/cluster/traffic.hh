/**
 * @file
 * Open-loop traffic generation for cluster-scale serving.
 *
 * Datacenter NPU fleets see request streams, not closed loops: tenants
 * submit independently of service completions, rates vary over the day
 * and bursts are the norm (the TPU serving study's motivation for
 * provisioning to tail load). This module synthesizes per-tenant
 * arrival-time streams from the seeded neu10::Rng so every experiment
 * is bit-reproducible:
 *
 *  - Poisson: homogeneous arrivals at ratePerSec (exponential
 *    inter-arrival times) — the classic open-loop baseline.
 *  - Bursty: a 2-state Markov-modulated Poisson process (MMPP-2). The
 *    stream alternates between a base state and a burst state whose
 *    rate is burstMultiplier x; exponential dwell times are chosen so
 *    the long-run burst-time fraction is burstFraction. Models flash
 *    crowds and retry storms.
 *  - Diurnal: a non-homogeneous Poisson process whose rate follows a
 *    sinusoidal day curve (peak-to-trough controlled by diurnalDepth),
 *    sampled by Lewis-Shedler thinning. Replayable: the same spec and
 *    seed reproduce the same trace.
 *  - Trace: replay an explicit arrival-time vector (captured from a
 *    production log or an earlier generator run).
 */

#ifndef NEU10_CLUSTER_TRAFFIC_HH
#define NEU10_CLUSTER_TRAFFIC_HH

#include <string>
#include <vector>

#include "common/random.hh"
#include "common/types.hh"

namespace neu10
{

/** Arrival-stream families (see file doc). */
enum class TrafficShape
{
    Poisson = 0,
    Bursty,
    Diurnal,
    Trace,
};

/** Human-readable shape name ("poisson", "bursty", ...). */
std::string trafficShapeName(TrafficShape shape);

/** Parse a shape name (case-insensitive). @throws FatalError. */
TrafficShape trafficShapeFromName(const std::string &name);

/** One tenant's request-stream description.
 *
 * Units: rates are requests per *simulated* second; durations are
 * seconds of simulated time. generateArrivals() converts to cycles
 * with the core clock it is given, so the same spec describes the
 * same physical traffic at any frequency.
 *
 * Seeding: every stochastic shape draws only from a neu10::Rng
 * seeded with @ref seed — equal (spec, horizon, freq) triples yield
 * bit-identical streams on every platform, and distinct tenants get
 * independent streams by using distinct seeds. Trace replay is
 * deterministic by definition and ignores the seed. */
struct TrafficSpec
{
    TrafficShape shape = TrafficShape::Poisson;

    /** Mean arrival rate in requests per simulated second (long-run
     * average for every shape, including bursty and diurnal). */
    double ratePerSec = 100.0;

    /** Stream seed; equal specs and seeds yield equal streams
     * (unused by TrafficShape::Trace). */
    std::uint64_t seed = 1;

    // --- Bursty (MMPP-2) -------------------------------------------
    /** Burst-state rate relative to the base state (> 1). The base
     * rate is derived so the long-run mean stays ratePerSec. */
    double burstMultiplier = 8.0;

    /** Long-run fraction of time spent in the burst state, (0, 1). */
    double burstFraction = 0.1;

    /** Mean dwell time in the burst state, seconds. */
    double burstDwellSec = 2e-3;

    // --- Diurnal ---------------------------------------------------
    /** Sinusoid amplitude as a fraction of the mean rate, [0, 1]. */
    double diurnalDepth = 0.8;

    /** Length of one simulated "day", seconds. */
    double diurnalPeriodSec = 0.05;

    /** Phase offset in [0, 1) of a period (0 starts at the mean,
     * rising). Lets collocated tenants peak at different times. */
    double diurnalPhase = 0.0;

    // --- Trace -----------------------------------------------------
    /** Explicit arrival times in *cycles* (shape == Trace). Entries
     * are sorted on replay; negative and beyond-horizon times are
     * dropped. */
    std::vector<Cycles> trace;
};

/**
 * Generate the arrival stream described by @p spec over
 * [0, @p horizon) cycles on a @p freq_hz clock. Deterministic in the
 * spec. Arrival times are sorted non-decreasing.
 */
std::vector<Cycles> generateArrivals(const TrafficSpec &spec,
                                     Cycles horizon, double freq_hz);

} // namespace neu10

#endif // NEU10_CLUSTER_TRAFFIC_HH
