#include "cluster/traffic.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/strings.hh"

namespace neu10
{

std::string
trafficShapeName(TrafficShape shape)
{
    switch (shape) {
      case TrafficShape::Poisson: return "poisson";
      case TrafficShape::Bursty: return "bursty";
      case TrafficShape::Diurnal: return "diurnal";
      case TrafficShape::Trace: return "trace";
    }
    panic("unknown traffic shape %d", static_cast<int>(shape));
}

TrafficShape
trafficShapeFromName(const std::string &name)
{
    const std::string low = toLower(name);
    if (low == "poisson")
        return TrafficShape::Poisson;
    if (low == "bursty" || low == "mmpp")
        return TrafficShape::Bursty;
    if (low == "diurnal")
        return TrafficShape::Diurnal;
    if (low == "trace")
        return TrafficShape::Trace;
    fatal("unknown traffic shape '%s' (want poisson, bursty, diurnal "
          "or trace)", name.c_str());
}

namespace
{

/** Homogeneous Poisson stream at @p rate_per_cycle over the horizon. */
std::vector<Cycles>
poissonStream(Rng &rng, double rate_per_cycle, Cycles horizon)
{
    std::vector<Cycles> out;
    const double mean_gap = 1.0 / rate_per_cycle;
    for (Cycles t = rng.exponential(mean_gap); t < horizon;
         t += rng.exponential(mean_gap))
        out.push_back(t);
    return out;
}

/**
 * MMPP-2: alternate base / burst states with exponential dwell times;
 * arrivals within a state are Poisson at the state rate. State
 * switches exploit memorylessness: a candidate arrival past the next
 * switch is discarded and redrawn at the new state's rate.
 */
std::vector<Cycles>
burstyStream(const TrafficSpec &spec, Rng &rng, double freq_hz,
             Cycles horizon)
{
    NEU10_ASSERT(spec.burstMultiplier > 1.0,
                 "burst state must be faster than the base state");
    NEU10_ASSERT(spec.burstFraction > 0.0 && spec.burstFraction < 1.0,
                 "burst fraction must be in (0, 1)");

    // Long-run mean (1-f) b + f mb = rate  ->  base rate b.
    const double f = spec.burstFraction;
    const double base_rate =
        spec.ratePerSec / (1.0 - f + f * spec.burstMultiplier);
    const double rate_cyc[2] = {
        base_rate / freq_hz,                         // base
        base_rate * spec.burstMultiplier / freq_hz,  // burst
    };
    // Dwell times: burst dwell is given; base dwell makes the time
    // fraction come out at f (f = Du / (Du + Db)).
    const double dwell_burst = spec.burstDwellSec * freq_hz;
    const double dwell_cyc[2] = {dwell_burst * (1.0 - f) / f,
                                 dwell_burst};

    std::vector<Cycles> out;
    // Start from the stationary state distribution so short horizons
    // are not biased toward the base state.
    int state = rng.uniform() < f ? 1 : 0;
    Cycles t = 0.0;
    Cycles next_switch = rng.exponential(dwell_cyc[state]);
    while (t < horizon) {
        const Cycles candidate =
            t + rng.exponential(1.0 / rate_cyc[state]);
        if (candidate >= next_switch) {
            t = next_switch;
            state ^= 1;
            next_switch = t + rng.exponential(dwell_cyc[state]);
            continue;
        }
        t = candidate;
        if (t < horizon)
            out.push_back(t);
    }
    return out;
}

/**
 * Non-homogeneous Poisson with a sinusoidal day curve, sampled by
 * Lewis-Shedler thinning against the peak rate.
 */
std::vector<Cycles>
diurnalStream(const TrafficSpec &spec, Rng &rng, double freq_hz,
              Cycles horizon)
{
    NEU10_ASSERT(spec.diurnalDepth >= 0.0 && spec.diurnalDepth <= 1.0,
                 "diurnal depth must be in [0, 1]");
    NEU10_ASSERT(spec.diurnalPeriodSec > 0.0,
                 "diurnal period must be positive");
    const double rate_cyc = spec.ratePerSec / freq_hz;
    const double peak = rate_cyc * (1.0 + spec.diurnalDepth);
    const Cycles period = spec.diurnalPeriodSec * freq_hz;
    const double two_pi = 2.0 * 3.14159265358979323846;

    std::vector<Cycles> out;
    const double mean_gap = 1.0 / peak;
    for (Cycles t = rng.exponential(mean_gap); t < horizon;
         t += rng.exponential(mean_gap)) {
        const double lambda =
            rate_cyc *
            (1.0 + spec.diurnalDepth *
                       std::sin(two_pi * (t / period +
                                          spec.diurnalPhase)));
        if (rng.uniform() * peak < lambda)
            out.push_back(t);
    }
    return out;
}

} // anonymous namespace

std::vector<Cycles>
generateArrivals(const TrafficSpec &spec, Cycles horizon,
                 double freq_hz)
{
    NEU10_ASSERT(horizon > 0.0, "traffic horizon must be positive");
    NEU10_ASSERT(freq_hz > 0.0, "clock frequency must be positive");

    if (spec.shape == TrafficShape::Trace) {
        std::vector<Cycles> out;
        out.reserve(spec.trace.size());
        for (Cycles t : spec.trace)
            if (t >= 0.0 && t < horizon)
                out.push_back(t);
        std::sort(out.begin(), out.end());
        return out;
    }

    NEU10_ASSERT(spec.ratePerSec > 0.0,
                 "arrival rate must be positive");
    Rng rng(spec.seed);
    switch (spec.shape) {
      case TrafficShape::Poisson:
        return poissonStream(rng, spec.ratePerSec / freq_hz, horizon);
      case TrafficShape::Bursty:
        return burstyStream(spec, rng, freq_hz, horizon);
      case TrafficShape::Diurnal:
        return diurnalStream(spec, rng, freq_hz, horizon);
      case TrafficShape::Trace:
        break; // handled above
    }
    panic("unknown traffic shape %d", static_cast<int>(spec.shape));
}

} // namespace neu10
