#include "virt/hypervisor.hh"

#include "common/logging.hh"

namespace neu10
{

namespace
{

/** Size of each vNPU's control-register BAR. */
constexpr Bytes kMmioWindow = 64_KiB;

} // anonymous namespace

Hypervisor::Hypervisor(const NpuBoardConfig &board) : manager_(board) {}

void
Hypervisor::checkOwner(TenantId tenant, VnpuId id) const
{
    const Vnpu &v = manager_.get(id);
    if (v.tenant != tenant)
        fatal("tenant %u attempted to manage vNPU %u owned by tenant "
              "%u", tenant, id, v.tenant);
}

VnpuId
Hypervisor::hcCreateVnpu(TenantId tenant, const VnpuConfig &config,
                         IsolationMode isolation, CoreId pinned_core)
{
    const VnpuId id = manager_.create(tenant, config, isolation,
                                      pinned_core);
    iommu_.attach(id);
    MmioRegion region;
    if (!freeMmio_.empty()) {
        region = freeMmio_.back();
        freeMmio_.pop_back();
    } else {
        region = MmioRegion{nextMmioBase_, kMmioWindow};
        nextMmioBase_ += kMmioWindow;
    }
    mmio_.emplace(id, region);
    return id;
}

void
Hypervisor::hcConfigureVnpu(TenantId tenant, VnpuId id,
                            const VnpuConfig &config)
{
    checkOwner(tenant, id);
    manager_.reconfigure(id, config);
}

void
Hypervisor::hcDestroyVnpu(TenantId tenant, VnpuId id)
{
    checkOwner(tenant, id);
    iommu_.detach(id);
    const auto it = mmio_.find(id);
    if (it != mmio_.end()) {
        freeMmio_.push_back(it->second);
        mmio_.erase(it);
    }
    manager_.destroy(id);
}

MmioRegion
Hypervisor::mmioRegion(VnpuId id) const
{
    auto it = mmio_.find(id);
    if (it == mmio_.end())
        fatal("vNPU %u has no MMIO window", id);
    return it->second;
}

} // namespace neu10
