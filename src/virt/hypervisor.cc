#include "virt/hypervisor.hh"

#include "common/logging.hh"

namespace neu10
{

namespace
{

/** Size of each vNPU's control-register BAR. */
constexpr Bytes kMmioWindow = 64_KiB;

} // anonymous namespace

Hypervisor::Hypervisor(const NpuBoardConfig &board) : manager_(board) {}

void
Hypervisor::checkOwner(TenantId tenant, VnpuId id) const
{
    const Vnpu &v = manager_.get(id);
    if (v.tenant != tenant)
        fatal("tenant %u attempted to manage vNPU %u owned by tenant "
              "%u", tenant, id, v.tenant);
}

VnpuId
Hypervisor::hcCreateVnpu(TenantId tenant, const VnpuConfig &config,
                         IsolationMode isolation, CoreId pinned_core)
{
    const VnpuId id = manager_.create(tenant, config, isolation,
                                      pinned_core);
    iommu_.attach(id);
    MmioRegion region;
    if (!freeMmio_.empty()) {
        region = freeMmio_.back();
        freeMmio_.pop_back();
    } else {
        region = MmioRegion{nextMmioBase_, kMmioWindow};
        nextMmioBase_ += kMmioWindow;
    }
    mmio_.emplace(id, region);
    if (trace_ != nullptr)
        trace_->instant(traceNow_, "hypercall", "hc-create-vnpu",
                        "tenant", tenant, "core",
                        pinned_core == kInvalidCore
                            ? -1.0
                            : static_cast<double>(pinned_core));
    return id;
}

void
Hypervisor::hcConfigureVnpu(TenantId tenant, VnpuId id,
                            const VnpuConfig &config)
{
    checkOwner(tenant, id);
    manager_.reconfigure(id, config);
}

void
Hypervisor::recycleMmio(VnpuId id)
{
    const auto it = mmio_.find(id);
    if (it == mmio_.end())
        return;
    // A window must never sit on the free list twice: the second
    // create reusing it would alias another live vNPU's BAR. The
    // live map and the free list are disjoint by construction; this
    // guards the invariant against any future bulk-teardown path
    // that re-walks stale resident lists.
    for (const MmioRegion &r : freeMmio_)
        NEU10_ASSERT(r.base != it->second.base,
                     "MMIO window %#llx double-recycled",
                     static_cast<unsigned long long>(r.base));
    freeMmio_.push_back(it->second);
    mmio_.erase(it);
}

void
Hypervisor::teardown(VnpuId id)
{
    iommu_.detach(id);
    recycleMmio(id);
    manager_.destroy(id);
}

void
Hypervisor::hcDestroyVnpu(TenantId tenant, VnpuId id)
{
    checkOwner(tenant, id);
    teardown(id);
    if (trace_ != nullptr)
        trace_->instant(traceNow_, "hypercall", "hc-destroy-vnpu",
                        "tenant", tenant);
}

std::vector<Hypervisor::Revoked>
Hypervisor::hcRevokeCore(CoreId core)
{
    // Snapshot the resident list first: teardown() mutates it via
    // the manager, and destroying while iterating the live list is
    // exactly the double-recycle hazard recycleMmio() guards.
    const std::vector<VnpuId> residents = manager_.residentsOf(core);
    std::vector<Revoked> revoked;
    revoked.reserve(residents.size());
    for (VnpuId id : residents) {
        revoked.push_back(Revoked{manager_.get(id).tenant, id});
        teardown(id);
    }
    if (trace_ != nullptr)
        trace_->instant(traceNow_, "hypercall", "hc-revoke-core",
                        "core", core, "vnpus",
                        static_cast<double>(revoked.size()));
    return revoked;
}

MmioRegion
Hypervisor::mmioRegion(VnpuId id) const
{
    auto it = mmio_.find(id);
    if (it == mmio_.end())
        fatal("vNPU %u has no MMIO window", id);
    return it->second;
}

} // namespace neu10
