#include "virt/manager.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace neu10
{

PnpuCore::PnpuCore(CoreId cid, const NpuCoreConfig &c)
    : id(cid), cfg(c),
      sram(std::make_unique<SegmentPool>(c.sramBytes, c.sramSegment)),
      hbm(std::make_unique<SegmentPool>(c.hbmBytes, c.hbmSegment))
{
}

double
PnpuCore::euUtilization() const
{
    const double total = cfg.numMes + cfg.numVes;
    return (dedicatedMes + dedicatedVes) / total;
}

double
PnpuCore::memUtilization() const
{
    const double total = hbm->totalSegments();
    return (total - hbm->freeSegments()) / total;
}

VnpuManager::VnpuManager(const NpuBoardConfig &board)
{
    for (unsigned i = 0; i < board.totalCores(); ++i)
        cores_.emplace_back(static_cast<CoreId>(i), board.core);
    NEU10_ASSERT(!cores_.empty(), "board has no cores");
}

bool
VnpuManager::coreFits(const PnpuCore &core, const VnpuConfig &config,
                      IsolationMode isolation) const
{
    // Memory is always hard-isolated.
    if (core.hbm->segmentsFor(config.memSizePerCore) >
        core.hbm->freeSegments())
        return false;
    if (core.sram->segmentsFor(config.sramSizePerCore) >
        core.sram->freeSegments())
        return false;
    if (isolation == IsolationMode::Hardware) {
        return core.dedicatedMes + config.numMesPerCore <=
                   core.cfg.numMes &&
               core.dedicatedVes + config.numVesPerCore <=
                   core.cfg.numVes;
    }
    return core.committedMes + config.numMesPerCore <=
               core.cfg.numMes * kMaxOversubscription &&
           core.committedVes + config.numVesPerCore <=
               core.cfg.numVes * kMaxOversubscription;
}

CoreId
VnpuManager::place(const VnpuConfig &config, IsolationMode isolation)
{
    const unsigned want_me = config.numMesPerCore;
    const unsigned want_ve = config.numVesPerCore;

    CoreId best = kInvalidCore;
    double best_score = 0.0;
    for (const PnpuCore &core : cores_) {
        if (!coreFits(core, config, isolation))
            continue;

        double score;
        if (isolation == IsolationMode::Hardware) {
            // Greedy EU/memory balance (§III-C): prefer the placement
            // that keeps engine and memory utilization closest.
            const double eu_after =
                static_cast<double>(core.dedicatedMes + want_me +
                                    core.dedicatedVes + want_ve) /
                (core.cfg.numMes + core.cfg.numVes);
            const double mem_after =
                1.0 - static_cast<double>(
                          core.hbm->freeSegments() -
                          core.hbm->segmentsFor(config.memSizePerCore)) /
                          core.hbm->totalSegments();
            score = std::abs(eu_after - mem_after);
        } else {
            // Load-balance: least committed engine requirement.
            score = core.committedMes + core.committedVes;
        }
        if (best == kInvalidCore || score < best_score) {
            best = core.id;
            best_score = score;
        }
    }
    return best;
}

void
VnpuManager::mapOnCore(Vnpu &v, CoreId core_id)
{
    PnpuCore &core = cores_[core_id];
    v.core = core_id;
    v.slot = static_cast<std::uint32_t>(core.residents.size());
    v.sramSegments = core.sram->allocate(v.config.sramSizePerCore);
    v.hbmSegments = core.hbm->allocate(v.config.memSizePerCore);
    if (v.isolation == IsolationMode::Hardware) {
        core.dedicatedMes += v.config.numMesPerCore;
        core.dedicatedVes += v.config.numVesPerCore;
    }
    core.committedMes += v.config.numMesPerCore;
    core.committedVes += v.config.numVesPerCore;
    core.residents.push_back(v.id);
    v.state = VnpuState::Mapped;
}

void
VnpuManager::unmapFromCore(Vnpu &v)
{
    NEU10_ASSERT(v.core != kInvalidCore, "vNPU %u is not mapped", v.id);
    PnpuCore &core = cores_[v.core];
    core.sram->release(v.sramSegments);
    core.hbm->release(v.hbmSegments);
    v.sramSegments.clear();
    v.hbmSegments.clear();
    if (v.isolation == IsolationMode::Hardware) {
        core.dedicatedMes -= v.config.numMesPerCore;
        core.dedicatedVes -= v.config.numVesPerCore;
    }
    core.committedMes -= v.config.numMesPerCore;
    core.committedVes -= v.config.numVesPerCore;
    core.residents.erase(std::find(core.residents.begin(),
                                   core.residents.end(), v.id));
    v.core = kInvalidCore;
}

VnpuId
VnpuManager::create(TenantId tenant, const VnpuConfig &config,
                    IsolationMode isolation, CoreId pinned_core)
{
    config.validate();
    if (config.totalCores() != 1)
        fatal("multi-core vNPUs are allocated as one instance per "
              "core; request %u cores as %u instances",
              config.totalCores(), config.totalCores());

    CoreId core = kInvalidCore;
    if (pinned_core != kInvalidCore) {
        if (pinned_core >= cores_.size())
            fatal("pinned core %u does not exist (%zu cores)",
                  pinned_core, cores_.size());
        if (!coreFits(cores_[pinned_core], config, isolation))
            fatal("pinned core %u cannot host %s (%s-isolated)",
                  pinned_core, config.toString().c_str(),
                  isolation == IsolationMode::Hardware ? "hardware"
                                                       : "software");
        core = pinned_core;
    } else {
        core = place(config, isolation);
    }
    if (core == kInvalidCore)
        fatal("no physical core can host %s (%s-isolated)",
              config.toString().c_str(),
              isolation == IsolationMode::Hardware ? "hardware"
                                                   : "software");

    Vnpu v;
    v.id = nextId_++;
    v.tenant = tenant;
    v.config = config;
    v.isolation = isolation;
    v.state = VnpuState::Created;
    auto [it, ok] = vnpus_.emplace(v.id, std::move(v));
    NEU10_ASSERT(ok, "duplicate vNPU id");
    mapOnCore(it->second, core);
    return it->first;
}

void
VnpuManager::reconfigure(VnpuId id, const VnpuConfig &config)
{
    config.validate();
    Vnpu &v = getMutable(id);
    PnpuCore &core = cores_[v.core];

    // Engine delta must fit the current core.
    if (v.isolation == IsolationMode::Hardware) {
        const unsigned other_me = core.dedicatedMes -
                                  v.config.numMesPerCore;
        const unsigned other_ve = core.dedicatedVes -
                                  v.config.numVesPerCore;
        if (other_me + config.numMesPerCore > core.cfg.numMes ||
            other_ve + config.numVesPerCore > core.cfg.numVes) {
            fatal("reconfigure of vNPU %u exceeds core %u engines", id,
                  v.core);
        }
    }

    // Re-segment memory: release then allocate (fixed segments, so no
    // fragmentation concerns).
    core.sram->release(v.sramSegments);
    core.hbm->release(v.hbmSegments);
    if (core.sram->segmentsFor(config.sramSizePerCore) >
            core.sram->freeSegments() ||
        core.hbm->segmentsFor(config.memSizePerCore) >
            core.hbm->freeSegments()) {
        // Roll back.
        v.sramSegments = core.sram->allocate(v.config.sramSizePerCore);
        v.hbmSegments = core.hbm->allocate(v.config.memSizePerCore);
        fatal("reconfigure of vNPU %u exceeds core %u memory", id,
              v.core);
    }

    if (v.isolation == IsolationMode::Hardware) {
        core.dedicatedMes += config.numMesPerCore - v.config.numMesPerCore;
        core.dedicatedVes += config.numVesPerCore - v.config.numVesPerCore;
    }
    core.committedMes += config.numMesPerCore - v.config.numMesPerCore;
    core.committedVes += config.numVesPerCore - v.config.numVesPerCore;
    v.config = config;
    v.sramSegments = core.sram->allocate(config.sramSizePerCore);
    v.hbmSegments = core.hbm->allocate(config.memSizePerCore);
}

void
VnpuManager::destroy(VnpuId id)
{
    Vnpu &v = getMutable(id);
    unmapFromCore(v);
    v.state = VnpuState::Destroyed;
    vnpus_.erase(id);
}

const Vnpu &
VnpuManager::get(VnpuId id) const
{
    auto it = vnpus_.find(id);
    if (it == vnpus_.end())
        fatal("unknown vNPU %u", id);
    return it->second;
}

Vnpu &
VnpuManager::getMutable(VnpuId id)
{
    auto it = vnpus_.find(id);
    if (it == vnpus_.end())
        fatal("unknown vNPU %u", id);
    return it->second;
}

std::vector<VnpuId>
VnpuManager::residentsOf(CoreId core) const
{
    NEU10_ASSERT(core < cores_.size(), "bad core id %u", core);
    return cores_[core].residents;
}

size_t
VnpuManager::liveCount() const
{
    return vnpus_.size();
}

} // namespace neu10
