/**
 * @file
 * Memory isolation by fixed-size segmentation (§III-C).
 *
 * Neu10 divides SRAM and HBM into fixed segments (2 MB / 1 GB on the
 * Table II core) and maps whole segments into each vNPU's virtual
 * address space. Translation is base+offset per segment — negligible
 * hardware — and there is no external fragmentation since segments are
 * fixed. Invalid accesses raise a page fault. ML frameworks allocate
 * one contiguous arena up front, so segment granularity is sufficient.
 */

#ifndef NEU10_VIRT_MEMORY_HH
#define NEU10_VIRT_MEMORY_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hh"

namespace neu10
{

/** Raised on an access outside the vNPU's mapped segments. */
class PageFaultError : public std::runtime_error
{
  public:
    explicit PageFaultError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Allocator over the fixed segments of one physical resource. */
class SegmentPool
{
  public:
    /**
     * @param total    capacity of the resource in bytes.
     * @param segment  fixed segment size (divides usable capacity).
     */
    SegmentPool(Bytes total, Bytes segment);

    /** Segments needed to back @p bytes. */
    unsigned segmentsFor(Bytes bytes) const;

    /**
     * Allocate enough segments for @p bytes.
     * @throws FatalError when the pool cannot satisfy the request.
     * @return the allocated segment indices (ascending).
     */
    std::vector<unsigned> allocate(Bytes bytes);

    /** Return segments to the pool; double-free panics. */
    void release(const std::vector<unsigned> &segments);

    unsigned totalSegments() const { return totalSegments_; }
    unsigned freeSegments() const;
    Bytes segmentSize() const { return segment_; }

  private:
    Bytes segment_;
    unsigned totalSegments_;
    std::vector<bool> used_;
};

/**
 * A vNPU's view of one resource: contiguous virtual addresses backed
 * by the mapped physical segments.
 */
class AddressSpace
{
  public:
    AddressSpace() = default;

    /**
     * @param segment   physical segment size.
     * @param segments  physical segment indices backing this space.
     */
    AddressSpace(Bytes segment, std::vector<unsigned> segments);

    /** Size of the virtual space in bytes. */
    Bytes size() const;

    /**
     * Translate a virtual address to a flat physical address
     * (segment_index * segment_size + offset).
     * @throws PageFaultError outside [0, size()).
     */
    Bytes translate(Bytes vaddr) const;

    /**
     * Translate an access of @p bytes starting at @p vaddr; the whole
     * range must be mapped.
     */
    Bytes translateRange(Bytes vaddr, Bytes bytes) const;

    const std::vector<unsigned> &segments() const { return segments_; }

  private:
    Bytes segment_ = 0;
    std::vector<unsigned> segments_;
};

} // namespace neu10

#endif // NEU10_VIRT_MEMORY_HH
