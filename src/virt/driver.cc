#include "virt/driver.hh"

#include "common/logging.hh"

namespace neu10
{

VnpuDriver::VnpuDriver(Hypervisor &hv, TenantId tenant,
                       const VnpuConfig &config, IsolationMode isolation)
    : hv_(hv), tenant_(tenant)
{
    id_ = hv_.hcCreateVnpu(tenant, config, isolation);
}

VnpuDriver::~VnpuDriver()
{
    if (id_ != kInvalidVnpu) {
        try {
            hv_.hcDestroyVnpu(tenant_, id_);
        } catch (const std::exception &) {
            // Destructor must not throw; teardown races are benign in
            // the simulation.
        }
    }
}

const VnpuConfig &
VnpuDriver::queryConfig() const
{
    return hv_.manager().get(id_).config;
}

void
VnpuDriver::bindExecutor(CommandExecutor *executor)
{
    executor_ = executor;
}

void
VnpuDriver::registerDmaBuffer(std::uint64_t guest_base, Bytes size)
{
    // Host backing is modeled as an identity+offset window.
    hv_.iommu().map(id_, guest_base, nextDmaWindow_, size);
    nextDmaWindow_ += size;
}

std::uint64_t
VnpuDriver::memcpyToDevice(std::uint64_t guest_addr, Bytes size)
{
    // The device will DMA from this range: fault early (as hardware
    // would at fetch time) if the buffer was never registered.
    hv_.iommu().translate(id_, guest_addr, size);
    Command cmd;
    cmd.id = nextCommand_++;
    cmd.kind = CommandKind::MemcpyHostToDevice;
    cmd.dmaAddr = guest_addr;
    cmd.size = size;
    ring_.push_back(cmd);
    doorbell();
    return cmd.id;
}

std::uint64_t
VnpuDriver::memcpyToHost(std::uint64_t guest_addr, Bytes size)
{
    hv_.iommu().translate(id_, guest_addr, size);
    Command cmd;
    cmd.id = nextCommand_++;
    cmd.kind = CommandKind::MemcpyDeviceToHost;
    cmd.dmaAddr = guest_addr;
    cmd.size = size;
    ring_.push_back(cmd);
    doorbell();
    return cmd.id;
}

std::uint64_t
VnpuDriver::launch(const CompiledModel *program)
{
    NEU10_ASSERT(program != nullptr, "null program");
    Command cmd;
    cmd.id = nextCommand_++;
    cmd.kind = CommandKind::Launch;
    cmd.program = program;
    ring_.push_back(cmd);
    doorbell();
    return cmd.id;
}

void
VnpuDriver::doorbell()
{
    if (!executor_)
        fatal("doorbell rung with no device executor bound");
    while (!ring_.empty()) {
        const Command cmd = ring_.front();
        ring_.pop_front();
        pending_.insert(cmd.id);
        executor_->execute(id_, cmd, [this](std::uint64_t cid) {
            complete(cid);
        });
    }
}

void
VnpuDriver::complete(std::uint64_t command_id)
{
    pending_.erase(command_id);
    completed_.insert(command_id);
    if (interruptHandler_) {
        hv_.iommu().bindInterrupt(
            id_, 0, [this, command_id](std::uint32_t) {
                interruptHandler_(command_id);
            });
        hv_.iommu().raiseInterrupt(id_, 0);
    }
}

bool
VnpuDriver::poll(std::uint64_t command_id) const
{
    return completed_.count(command_id) > 0;
}

void
VnpuDriver::setInterruptHandler(std::function<void(std::uint64_t)> fn)
{
    interruptHandler_ = std::move(fn);
}

size_t
VnpuDriver::inFlight() const
{
    return pending_.size();
}

} // namespace neu10
