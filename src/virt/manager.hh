/**
 * @file
 * The vNPU manager (§III-C, §III-F): host-kernel-module analogue that
 * tracks every physical NPU's free resources and implements the
 * vNPU-to-pNPU mapping policies.
 *
 * Hardware-isolated mapping admits a vNPU only if dedicated MEs/VEs,
 * SRAM and HBM segments are available; placement greedily balances EU
 * and memory consumption so one resource does not strand the other
 * ("vNPUs with many EUs and small memory will be collocated with
 * vNPUs with few EUs and large memory"). Software-isolated mapping
 * allows engine oversubscription and load-balances by least total
 * committed requirement.
 */

#ifndef NEU10_VIRT_MANAGER_HH
#define NEU10_VIRT_MANAGER_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "npu/config.hh"
#include "virt/memory.hh"
#include "vnpu/instance.hh"

namespace neu10
{

/** Resource bookkeeping for one physical core. */
struct PnpuCore
{
    CoreId id = 0;
    NpuCoreConfig cfg;
    unsigned dedicatedMes = 0;   ///< hardware-isolated commitments
    unsigned dedicatedVes = 0;
    unsigned committedMes = 0;   ///< total incl. software-isolated
    unsigned committedVes = 0;
    std::unique_ptr<SegmentPool> sram;
    std::unique_ptr<SegmentPool> hbm;
    std::vector<VnpuId> residents;

    explicit PnpuCore(CoreId cid, const NpuCoreConfig &c);

    /** Fraction of engines dedicated (hardware-isolated). */
    double euUtilization() const;

    /** Fraction of HBM segments allocated. */
    double memUtilization() const;
};

/** Engine-oversubscription cap for software-isolated mapping. */
inline constexpr unsigned kMaxOversubscription = 4;

/** The host-side vNPU manager. */
class VnpuManager
{
  public:
    explicit VnpuManager(const NpuBoardConfig &board);

    /**
     * Create and map a vNPU (hypercall 1).
     *
     * By default the manager picks the core (greedy EU/memory
     * balance, §III-C). A cluster-level placer that has already
     * decided the core (cluster/placement) passes it as
     * @p pinned_core; the manager then only validates capacity there,
     * keeping both layers' bookkeeping in agreement.
     *
     * @throws FatalError when no core — or the pinned core — can host
     *         the request.
     */
    VnpuId create(TenantId tenant, const VnpuConfig &config,
                  IsolationMode isolation = IsolationMode::Hardware,
                  CoreId pinned_core = kInvalidCore);

    /**
     * Change the configuration of an existing vNPU (hypercall 2).
     * Engine deltas must fit the current core; memory is re-segmented.
     */
    void reconfigure(VnpuId id, const VnpuConfig &config);

    /** Deallocate a vNPU and release its resources (hypercall 3). */
    void destroy(VnpuId id);

    /** Look up a live (non-destroyed) instance. */
    const Vnpu &get(VnpuId id) const;

    /** All vNPUs currently mapped to @p core. */
    std::vector<VnpuId> residentsOf(CoreId core) const;

    /** Physical inventory access. */
    const std::vector<PnpuCore> &cores() const { return cores_; }

    size_t liveCount() const;

  private:
    Vnpu &getMutable(VnpuId id);
    bool coreFits(const PnpuCore &core, const VnpuConfig &config,
                  IsolationMode isolation) const;
    CoreId place(const VnpuConfig &config, IsolationMode isolation);
    void mapOnCore(Vnpu &v, CoreId core);
    void unmapFromCore(Vnpu &v);

    std::vector<PnpuCore> cores_;
    std::unordered_map<VnpuId, Vnpu> vnpus_;
    VnpuId nextId_ = 1;
};

} // namespace neu10

#endif // NEU10_VIRT_MANAGER_HH
