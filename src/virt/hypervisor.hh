/**
 * @file
 * Hypervisor mediation layer (§III-F).
 *
 * Modeled after the KVM + vfio-mdev arrangement the paper describes:
 * the hypervisor mediates only the three management hypercalls
 * (create / reconfigure / destroy), enforcing tenant ownership, and
 * hands out the hypervisor-bypass plumbing — an MMIO window for the
 * vNPU's control registers and IOMMU attachment for its DMA — so the
 * data path never traps.
 */

#ifndef NEU10_VIRT_HYPERVISOR_HH
#define NEU10_VIRT_HYPERVISOR_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "obs/trace.hh"
#include "virt/iommu.hh"
#include "virt/manager.hh"

namespace neu10
{

/** Guest-visible MMIO window of one vNPU (PCIe BAR analogue). */
struct MmioRegion
{
    std::uint64_t base = 0;
    Bytes size = 0;
};

/** KVM-like hypervisor owning the vNPU manager and the IOMMU. */
class Hypervisor
{
  public:
    explicit Hypervisor(const NpuBoardConfig &board);

    /**
     * Hypercall 1: create a vNPU for @p tenant. Installs the vNPU
     * context, attaches the IOMMU and carves an MMIO window (reusing
     * a recycled window when one is free). @p pinned_core lets a
     * cluster-level placer dictate the physical core (see
     * VnpuManager::create); the elastic fleet migrates vNPUs through
     * destroy + pinned re-create, which is what churns this MMIO
     * free list.
     */
    VnpuId hcCreateVnpu(TenantId tenant, const VnpuConfig &config,
                        IsolationMode isolation =
                            IsolationMode::Hardware,
                        CoreId pinned_core = kInvalidCore);

    /**
     * Hypercall 2: reconfigure. Only the owner may call.
     * @throws FatalError on ownership violation.
     */
    void hcConfigureVnpu(TenantId tenant, VnpuId id,
                         const VnpuConfig &config);

    /** Hypercall 3: deallocate; removes DMA setup and the context. */
    void hcDestroyVnpu(TenantId tenant, VnpuId id);

    /** One vNPU torn down by a host-side core revocation. */
    struct Revoked
    {
        TenantId tenant = 0;
        VnpuId id = kInvalidVnpu;
    };

    /**
     * Host-initiated bulk teardown: destroy every vNPU resident on
     * @p core, detaching DMA and recycling each MMIO window exactly
     * once. This is the failover path — when hardware faults kill a
     * core, the *host* revokes the residents regardless of tenant
     * ownership (there is no guest to consent), so unlike the
     * hypercalls this performs no ownership check. Idempotent: a
     * second revocation of the same core finds no residents and
     * returns empty.
     *
     * @return the (tenant, id) pairs destroyed, in creation order.
     */
    std::vector<Revoked> hcRevokeCore(CoreId core);

    /** The vNPU's control-register window (hypervisor-bypass path). */
    MmioRegion mmioRegion(VnpuId id) const;

    /**
     * Attach a trace buffer (not owned; nullptr detaches): each
     * management hypercall records an instant — "hc-create-vnpu",
     * "hc-destroy-vnpu", "hc-revoke-core" — stamped with the sim time
     * last set through setTraceNow(). The hypervisor is a host-side
     * control-plane model with no clock of its own, so the caller
     * (the fleet's serial epoch loop) advances the stamp at each
     * boundary.
     */
    void setTrace(TraceBuffer *trace) { trace_ = trace; }

    /** Simulated time stamped onto subsequent hypercall events. */
    void setTraceNow(Cycles now) { traceNow_ = now; }

    VnpuManager &manager() { return manager_; }
    const VnpuManager &manager() const { return manager_; }
    Iommu &iommu() { return iommu_; }

  private:
    void checkOwner(TenantId tenant, VnpuId id) const;
    void teardown(VnpuId id);
    void recycleMmio(VnpuId id);

    VnpuManager manager_;
    Iommu iommu_;
    std::unordered_map<VnpuId, MmioRegion> mmio_;
    // Windows of destroyed vNPUs, reused LIFO before the BAR space
    // grows — the guest-physical aperture is finite, so long-lived
    // hosts must recycle (tested in test_virt).
    std::vector<MmioRegion> freeMmio_;
    std::uint64_t nextMmioBase_ = 0xf000'0000ull;

    TraceBuffer *trace_ = nullptr;
    Cycles traceNow_ = 0.0;
};

} // namespace neu10

#endif // NEU10_VIRT_HYPERVISOR_HH
