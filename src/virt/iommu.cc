#include "virt/iommu.hh"

#include "common/logging.hh"
#include "common/strings.hh"

namespace neu10
{

void
Iommu::attach(VnpuId id)
{
    if (devices_.count(id))
        fatal("vNPU %u already attached to the IOMMU", id);
    devices_.emplace(id, Device{});
}

void
Iommu::detach(VnpuId id)
{
    if (!devices_.erase(id))
        fatal("vNPU %u is not attached to the IOMMU", id);
}

bool
Iommu::attached(VnpuId id) const
{
    return devices_.count(id) > 0;
}

void
Iommu::map(VnpuId id, std::uint64_t guest_base, std::uint64_t host_base,
           Bytes size)
{
    auto it = devices_.find(id);
    if (it == devices_.end())
        fatal("mapping DMA for unattached vNPU %u", id);
    NEU10_ASSERT(size > 0, "empty DMA window");

    // Reject overlap with any existing window.
    for (const auto &[base, w] : it->second.windows) {
        const bool disjoint =
            guest_base + size <= base || base + w.size <= guest_base;
        if (!disjoint)
            fatal("DMA window 0x%llx+%llu overlaps existing window",
                  static_cast<unsigned long long>(guest_base),
                  static_cast<unsigned long long>(size));
    }
    it->second.windows.emplace(guest_base, Window{host_base, size});
}

void
Iommu::unmap(VnpuId id, std::uint64_t guest_base)
{
    auto it = devices_.find(id);
    if (it == devices_.end() || !it->second.windows.erase(guest_base))
        fatal("no DMA window at 0x%llx for vNPU %u",
              static_cast<unsigned long long>(guest_base), id);
}

std::uint64_t
Iommu::translate(VnpuId id, std::uint64_t guest_addr, Bytes bytes) const
{
    auto it = devices_.find(id);
    if (it == devices_.end())
        throw DmaFaultError(
            csprintf("DMA fault: vNPU %u not attached", id));

    // Find the window containing guest_addr: the last window whose
    // base is <= guest_addr.
    const auto &windows = it->second.windows;
    auto w = windows.upper_bound(guest_addr);
    if (w == windows.begin())
        throw DmaFaultError(
            csprintf("DMA fault: 0x%llx unmapped for vNPU %u",
                     static_cast<unsigned long long>(guest_addr), id));
    --w;
    const std::uint64_t off = guest_addr - w->first;
    if (off + bytes > w->second.size)
        throw DmaFaultError(
            csprintf("DMA fault: access 0x%llx+%llu crosses window end",
                     static_cast<unsigned long long>(guest_addr),
                     static_cast<unsigned long long>(bytes)));
    return w->second.hostBase + off;
}

void
Iommu::bindInterrupt(VnpuId id, std::uint32_t vector,
                     InterruptHandler handler)
{
    auto it = devices_.find(id);
    if (it == devices_.end())
        fatal("binding interrupt for unattached vNPU %u", id);
    it->second.vectors[vector] = std::move(handler);
}

void
Iommu::raiseInterrupt(VnpuId id, std::uint32_t vector) const
{
    auto it = devices_.find(id);
    if (it == devices_.end())
        return;
    auto v = it->second.vectors.find(vector);
    if (v != it->second.vectors.end() && v->second)
        v->second(vector);
}

size_t
Iommu::windowCount(VnpuId id) const
{
    auto it = devices_.find(id);
    return it == devices_.end() ? 0 : it->second.windows.size();
}

} // namespace neu10
