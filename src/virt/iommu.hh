/**
 * @file
 * IOMMU model: DMA and interrupt remapping for vNPUs (§III-F).
 *
 * Each vNPU is exposed to its VM as a PCIe virtual function; the IOMMU
 * confines the device's DMA to the guest's registered buffers and
 * remaps completion interrupts to the owning tenant. Unmapped accesses
 * raise DMA faults instead of corrupting other tenants' memory — the
 * isolation property the tests exercise.
 */

#ifndef NEU10_VIRT_IOMMU_HH
#define NEU10_VIRT_IOMMU_HH

#include <cstdint>
#include <functional>
#include <map>
#include <stdexcept>
#include <unordered_map>

#include "common/types.hh"

namespace neu10
{

/** Raised when a device DMA touches an unmapped guest address. */
class DmaFaultError : public std::runtime_error
{
  public:
    explicit DmaFaultError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** DMA + interrupt remapping unit. */
class Iommu
{
  public:
    /** Register a device (vNPU); fresh devices have no mappings. */
    void attach(VnpuId id);

    /** Remove a device and all of its mappings/vectors. */
    void detach(VnpuId id);

    bool attached(VnpuId id) const;

    /**
     * Map a guest DMA window [guest_base, guest_base + size) to host
     * physical [host_base, ...). Windows of one device must not
     * overlap.
     */
    void map(VnpuId id, std::uint64_t guest_base,
             std::uint64_t host_base, Bytes size);

    /** Remove one window (by its guest base). */
    void unmap(VnpuId id, std::uint64_t guest_base);

    /**
     * Translate a device access of @p bytes at @p guest_addr.
     * @throws DmaFaultError for unattached devices or unmapped ranges.
     */
    std::uint64_t translate(VnpuId id, std::uint64_t guest_addr,
                            Bytes bytes = 1) const;

    /** Interrupt remapping: bind a vector to a handler. */
    using InterruptHandler = std::function<void(std::uint32_t vector)>;
    void bindInterrupt(VnpuId id, std::uint32_t vector,
                       InterruptHandler handler);

    /** Deliver an interrupt from the device; unbound vectors drop. */
    void raiseInterrupt(VnpuId id, std::uint32_t vector) const;

    /** Number of DMA windows of a device. */
    size_t windowCount(VnpuId id) const;

  private:
    struct Window
    {
        std::uint64_t hostBase;
        Bytes size;
    };
    struct Device
    {
        std::map<std::uint64_t, Window> windows; // by guest base
        std::unordered_map<std::uint32_t, InterruptHandler> vectors;
    };
    std::unordered_map<VnpuId, Device> devices_;
};

} // namespace neu10

#endif // NEU10_VIRT_IOMMU_HH
