/**
 * @file
 * Para-virtualized guest vNPU driver and command path (Fig. 11).
 *
 * The guest enqueues commands (memcpy, kernel launch, fence) into a
 * command buffer in its own memory; the NPU fetches them directly —
 * no hypervisor on the data path — performs DMA through the IOMMU,
 * and reports completion via a memory-mapped status register (polling)
 * or a remapped interrupt. The device side is a CommandExecutor bound
 * at attach time; in this repository that is the NpuCoreSim-backed
 * executor from src/runtime.
 */

#ifndef NEU10_VIRT_DRIVER_HH
#define NEU10_VIRT_DRIVER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_set>

#include "compiler/lower.hh"
#include "virt/hypervisor.hh"

namespace neu10
{

/** Guest-visible command kinds (Fig. 11's NPU API calls). */
enum class CommandKind : std::uint8_t
{
    MemcpyHostToDevice = 0,
    MemcpyDeviceToHost,
    Launch,
    Fence,
};

/** One command-buffer entry. */
struct Command
{
    std::uint64_t id = 0;
    CommandKind kind = CommandKind::Fence;
    std::uint64_t dmaAddr = 0;            ///< guest DMA address
    Bytes size = 0;                       ///< memcpy payload
    const CompiledModel *program = nullptr; ///< Launch payload
};

/**
 * Device-side consumer of commands. Completion is signalled back via
 * the provided callback (which the driver wires to its status
 * register and interrupt vector).
 */
class CommandExecutor
{
  public:
    virtual ~CommandExecutor() = default;

    using Completion = std::function<void(std::uint64_t command_id)>;

    /** Begin executing @p cmd on behalf of @p vnpu. */
    virtual void execute(VnpuId vnpu, const Command &cmd,
                         Completion done) = 0;
};

/** The guest driver for one vNPU. */
class VnpuDriver
{
  public:
    /**
     * Create the vNPU via hypercall, attach DMA and MMIO.
     *
     * @param hv         the hypervisor (hypercall endpoint).
     * @param tenant     owning tenant.
     * @param config     requested vNPU shape.
     * @param isolation  mapping discipline.
     */
    VnpuDriver(Hypervisor &hv, TenantId tenant,
               const VnpuConfig &config,
               IsolationMode isolation = IsolationMode::Hardware);

    /** Destroys the vNPU via hypercall. */
    ~VnpuDriver();

    VnpuDriver(const VnpuDriver &) = delete;
    VnpuDriver &operator=(const VnpuDriver &) = delete;

    VnpuId id() const { return id_; }

    /** Query the vNPU hierarchy, as a guest framework would. */
    const VnpuConfig &queryConfig() const;

    /** Bind the device-side executor (done by the platform/runtime). */
    void bindExecutor(CommandExecutor *executor);

    /** Register a guest DMA buffer (IOMMU window). */
    void registerDmaBuffer(std::uint64_t guest_base, Bytes size);

    /** Enqueue a host->device copy; returns the command id. */
    std::uint64_t memcpyToDevice(std::uint64_t guest_addr, Bytes size);

    /** Enqueue a device->host copy. */
    std::uint64_t memcpyToHost(std::uint64_t guest_addr, Bytes size);

    /** Enqueue a kernel launch of a compiled program. */
    std::uint64_t launch(const CompiledModel *program);

    /** Poll the status register: true once the command completed. */
    bool poll(std::uint64_t command_id) const;

    /** Completion interrupt (optional alternative to polling). */
    void setInterruptHandler(std::function<void(std::uint64_t)> fn);

    /** Commands submitted but not yet completed. */
    size_t inFlight() const;

  private:
    void doorbell();
    void complete(std::uint64_t command_id);

    Hypervisor &hv_;
    TenantId tenant_;
    VnpuId id_ = kInvalidVnpu;
    CommandExecutor *executor_ = nullptr;

    std::deque<Command> ring_;
    std::unordered_set<std::uint64_t> pending_;
    std::unordered_set<std::uint64_t> completed_;
    std::function<void(std::uint64_t)> interruptHandler_;
    std::uint64_t nextCommand_ = 1;
    std::uint64_t nextDmaWindow_ = 0x1000'0000ull;
};

} // namespace neu10

#endif // NEU10_VIRT_DRIVER_HH
