#include "virt/memory.hh"

#include "common/logging.hh"
#include "common/strings.hh"

namespace neu10
{

SegmentPool::SegmentPool(Bytes total, Bytes segment)
    : segment_(segment)
{
    NEU10_ASSERT(segment > 0, "segment size must be positive");
    totalSegments_ = static_cast<unsigned>(total / segment);
    NEU10_ASSERT(totalSegments_ > 0, "resource smaller than a segment");
    used_.assign(totalSegments_, false);
}

unsigned
SegmentPool::segmentsFor(Bytes bytes) const
{
    if (bytes == 0)
        return 0;
    return static_cast<unsigned>((bytes + segment_ - 1) / segment_);
}

unsigned
SegmentPool::freeSegments() const
{
    unsigned free = 0;
    for (bool u : used_)
        free += !u;
    return free;
}

std::vector<unsigned>
SegmentPool::allocate(Bytes bytes)
{
    const unsigned want = segmentsFor(bytes);
    if (want > freeSegments())
        fatal("segment pool exhausted: want %u segments of %s, %u free",
              want, formatBytes(segment_).c_str(), freeSegments());
    std::vector<unsigned> out;
    out.reserve(want);
    for (unsigned i = 0; i < totalSegments_ && out.size() < want; ++i) {
        if (!used_[i]) {
            used_[i] = true;
            out.push_back(i);
        }
    }
    return out;
}

void
SegmentPool::release(const std::vector<unsigned> &segments)
{
    for (unsigned s : segments) {
        NEU10_ASSERT(s < totalSegments_, "segment %u out of range", s);
        NEU10_ASSERT(used_[s], "double free of segment %u", s);
        used_[s] = false;
    }
}

AddressSpace::AddressSpace(Bytes segment, std::vector<unsigned> segments)
    : segment_(segment), segments_(std::move(segments))
{
    NEU10_ASSERT(segment > 0, "segment size must be positive");
}

Bytes
AddressSpace::size() const
{
    return segment_ * segments_.size();
}

Bytes
AddressSpace::translate(Bytes vaddr) const
{
    if (segment_ == 0 || vaddr >= size())
        throw PageFaultError(
            csprintf("page fault: vaddr 0x%llx outside %s space",
                     static_cast<unsigned long long>(vaddr),
                     formatBytes(size()).c_str()));
    const Bytes idx = vaddr / segment_;
    const Bytes offset = vaddr % segment_;
    return static_cast<Bytes>(segments_[idx]) * segment_ + offset;
}

Bytes
AddressSpace::translateRange(Bytes vaddr, Bytes bytes) const
{
    if (bytes > 0)
        translate(vaddr + bytes - 1); // fault if the end is unmapped
    return translate(vaddr);
}

} // namespace neu10
