#include "sim/event_queue.hh"

#include "common/logging.hh"

namespace neu10
{

EventId
EventQueue::schedule(Cycles when, Callback cb, EventPriority prio)
{
    NEU10_ASSERT(when >= now_,
                 "cannot schedule into the past (when=%g now=%g)",
                 when, now_);
    NEU10_ASSERT(cb != nullptr, "event needs a callback");
    const EventId id = nextId_++;
    heap_.push(Entry{when, static_cast<int>(prio), id});
    live_.emplace(id, std::move(cb));
    ++pendingCount_;
    return id;
}

void
EventQueue::deschedule(EventId id)
{
    auto it = live_.find(id);
    if (it == live_.end())
        return;
    live_.erase(it);
    --pendingCount_;
}

void
EventQueue::popCancelled()
{
    while (!heap_.empty() && !live_.count(heap_.top().id))
        heap_.pop();
}

bool
EventQueue::empty() const
{
    return pendingCount_ == 0;
}

Cycles
EventQueue::nextEventTime() const
{
    // const_cast-free scan: copy-pop is too costly, so peek through the
    // heap top after discarding stale entries via a mutable helper.
    auto *self = const_cast<EventQueue *>(this);
    self->popCancelled();
    return heap_.empty() ? kCyclesInf : heap_.top().when;
}

bool
EventQueue::step()
{
    popCancelled();
    if (heap_.empty())
        return false;
    const Entry e = heap_.top();
    heap_.pop();
    auto it = live_.find(e.id);
    NEU10_ASSERT(it != live_.end(), "live event vanished");
    Callback cb = std::move(it->second);
    live_.erase(it);
    --pendingCount_;
    NEU10_ASSERT(e.when >= now_, "event time went backwards");
    now_ = e.when;
    ++executed_;
    cb(now_);
    return true;
}

Cycles
EventQueue::runUntil(Cycles limit)
{
    while (true) {
        popCancelled();
        if (heap_.empty())
            break;
        if (heap_.top().when > limit) {
            now_ = limit;
            break;
        }
        step();
    }
    if (now_ < limit && limit < kCyclesInf)
        now_ = limit;
    return now_;
}

} // namespace neu10
