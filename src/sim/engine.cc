#include "sim/engine.hh"

#include "common/logging.hh"
#include "common/strings.hh"

namespace neu10
{

std::string
engineName(SimEngine engine)
{
    switch (engine) {
      case SimEngine::EventDriven: return "event-driven";
      case SimEngine::PerCycle: return "per-cycle";
    }
    panic("unknown sim engine %d", static_cast<int>(engine));
}

SimEngine
engineFromName(const std::string &name)
{
    const std::string low = toLower(name);
    if (low == "event-driven" || low == "eventdriven" ||
        low == "fast-forward" || low == "ff") {
        return SimEngine::EventDriven;
    }
    if (low == "per-cycle" || low == "percycle" || low == "reference")
        return SimEngine::PerCycle;
    fatal("unknown sim engine '%s'; valid names are 'event-driven' "
          "(aliases 'eventdriven', 'fast-forward', 'ff') and "
          "'per-cycle' (aliases 'percycle', 'reference'), "
          "case-insensitive", name.c_str());
}

} // namespace neu10
