/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The NPU simulator is event-driven in the paper's sense: simulated state
 * changes only at discrete points (uTOp completion, request arrival,
 * scheduler quantum expiry, preemption). The EventQueue totally orders
 * events by (time, priority, insertion sequence) so that simulations are
 * deterministic even when events coincide in time.
 */

#ifndef NEU10_SIM_EVENT_QUEUE_HH
#define NEU10_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace neu10
{

/**
 * Priorities break ties between simultaneous events; lower runs first.
 * Completions must precede scheduling decisions at the same instant so
 * the scheduler sees freshly freed resources.
 */
enum class EventPriority : int
{
    Completion = 0,  ///< uTOp / DMA / request completions
    Arrival = 1,     ///< new work entering the system
    Schedule = 2,    ///< scheduler invocations
    Stat = 3,        ///< statistics sampling
    Default = 4,
};

/** Opaque handle used to cancel a scheduled event. */
using EventId = std::uint64_t;

/** Sentinel returned when no event is pending. */
inline constexpr EventId kInvalidEvent = 0;

/** A deterministic discrete-event queue. */
class EventQueue
{
  public:
    using Callback = std::function<void(Cycles now)>;

    /**
     * Schedule @p cb at absolute time @p when.
     * @return a handle usable with deschedule().
     */
    EventId schedule(Cycles when, Callback cb,
                     EventPriority prio = EventPriority::Default);

    /** Cancel a pending event; no-op if already fired or cancelled. */
    void deschedule(EventId id);

    /** True if no runnable events remain. */
    bool empty() const;

    /** Number of pending (non-cancelled) events. */
    size_t pending() const { return pendingCount_; }

    /** Current simulated time in cycles. */
    Cycles now() const { return now_; }

    /** Time of the earliest pending event, or kCyclesInf. */
    Cycles nextEventTime() const;

    /**
     * Run events until the queue is empty or @p limit is reached.
     * Events scheduled exactly at @p limit still run.
     * @return the final simulated time.
     */
    Cycles runUntil(Cycles limit = kCyclesInf);

    /** Run exactly one event if any is pending; @return true if run. */
    bool step();

    /** Total number of events executed (for stats / debug). */
    std::uint64_t executed() const { return executed_; }

  private:
    struct Entry
    {
        Cycles when;
        int prio;
        EventId id;
        // Ordering for a min-queue via std::greater semantics.
        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            if (prio != o.prio)
                return prio > o.prio;
            return id > o.id;
        }
    };

    void popCancelled();

    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>
        heap_;
    // id -> callback; erased on deschedule so heap entries become stale
    // and are lazily discarded when popped.
    std::unordered_map<EventId, Callback> live_;

    Cycles now_ = 0.0;
    EventId nextId_ = 1;
    size_t pendingCount_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace neu10

#endif // NEU10_SIM_EVENT_QUEUE_HH
