/**
 * @file
 * Clock-domain conversions between simulated cycles and wall time.
 *
 * The simulated NPU core runs at a fixed frequency (1050 MHz in the
 * paper's Table II). All simulator-internal bookkeeping is in cycles;
 * report code converts to seconds for figures quoted in ms/us and to
 * bytes/second for bandwidth.
 */

#ifndef NEU10_SIM_CLOCK_HH
#define NEU10_SIM_CLOCK_HH

#include "common/types.hh"

namespace neu10
{

/** A fixed-frequency clock domain. */
class Clock
{
  public:
    /** @param freq_hz clock frequency in Hz (> 0). */
    explicit constexpr Clock(double freq_hz = 1.05e9)
        : freqHz_(freq_hz)
    {}

    constexpr double freqHz() const { return freqHz_; }

    /** Duration of one cycle in seconds. */
    constexpr double period() const { return 1.0 / freqHz_; }

    /** Convert a cycle count to seconds. */
    constexpr double toSeconds(Cycles cycles) const
    { return cycles / freqHz_; }

    /** Convert seconds to cycles. */
    constexpr Cycles toCycles(double seconds) const
    { return seconds * freqHz_; }

    /** Convert a bytes-per-cycle rate to bytes per second. */
    constexpr double toBytesPerSec(double bytes_per_cycle) const
    { return bytes_per_cycle * freqHz_; }

    /** Convert bytes-per-second bandwidth to bytes per cycle. */
    constexpr double toBytesPerCycle(double bytes_per_sec) const
    { return bytes_per_sec / freqHz_; }

  private:
    double freqHz_;
};

} // namespace neu10

#endif // NEU10_SIM_CLOCK_HH
