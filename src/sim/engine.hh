/**
 * @file
 * Simulation-engine selection: fast-forward vs per-cycle reference.
 *
 * The production engine is *event-driven fast-forward*: at every
 * scheduling decision the core simulator computes the next cycle at
 * which any tenant's state can actually change (unit completion,
 * context-switch penalty expiry, policy wake-up, request arrival,
 * epoch boundary) and jumps the clock straight to it, integrating
 * utilization and share statistics analytically over the skipped
 * span. The *per-cycle reference* engine executes the same schedule
 * — results are bit-identical by construction — but walks the clock
 * through every intervening cycle, re-deriving at each one whether
 * anything can change. That is the cost model of a naive cycle-by-
 * cycle simulator, and the ratio between the two engines' wall-clock
 * speeds (bench_perf_engine, BENCH_PERF.json) is the recorded payoff
 * of the fast-forward design.
 *
 * The per-cycle engine exists to be measured against and to anchor
 * the invariance suite (tests/test_perf_engine.cpp, CTest label
 * `perf`): any divergence between the engines is a fast-forward bug.
 */

#ifndef NEU10_SIM_ENGINE_HH
#define NEU10_SIM_ENGINE_HH

#include <string>

namespace neu10
{

/** How the core simulator advances time (see file doc). */
enum class SimEngine
{
    EventDriven = 0, ///< fast-forward to the next state change
    PerCycle,        ///< reference: visit every intervening cycle
};

/** Human-readable engine name ("event-driven" / "per-cycle"). */
std::string engineName(SimEngine engine);

/**
 * Parse an engine name (case-insensitive; accepts "event-driven",
 * "eventdriven", "fast-forward", "ff" and "per-cycle", "percycle",
 * "reference"). Used by bench CLIs. @throws FatalError.
 */
SimEngine engineFromName(const std::string &name);

} // namespace neu10

#endif // NEU10_SIM_ENGINE_HH
