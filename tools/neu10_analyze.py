#!/usr/bin/env python3
"""Whole-program determinism certifier for the neu10 source tree.

Every published artifact — scenario goldens, parity suites, the
BENCH_PERF speedup gates, the bit-identical-across-thread-widths and
engine-equality contracts — assumes nothing in the simulation hot
path can observe wall-clock time, unseeded randomness, the
environment, thread identity, or hash-order iteration. The token
lint (tools/lint_determinism.py) checks single lines against a
hand-maintained scope list; this tool builds a cross-TU call graph
of src/ and certifies the assumption whole-program:

  impure-path      purity reachability: from the sim entry points
                   (runFleet, runServing, runLlmServing, runScenario,
                   the NpuCoreSim advance path) no call chain may
                   reach a nondeterminism source — std::chrono
                   *_clock::now, time()/gettimeofday/clock_gettime,
                   rand()/std::random_device outside common/random,
                   getenv outside common/env,
                   std::this_thread::get_id, or stdout/stderr stream
                   writes outside common/logging. Each violation is
                   reported as the full chain entry -> ... -> banned,
                   with file:line for every hop.
  unordered-iter   type-based result determinism: iteration over a
                   variable or member whose declared type is
                   std::unordered_map/unordered_set, inside a
                   function that produces *Result data or exports
                   JSON. Unlike the lint's path list, coverage comes
                   from the types in use, so new subsystems are
                   covered by default.
  mutable-global   shared-state audit: every non-const namespace- or
                   static-storage variable in src/ must be const,
                   constexpr, std::atomic, thread_local, or
                   NEU10_GUARDED_BY-annotated.
  pointer-key-iter ordered iteration over a std::map/std::set keyed
                   by a raw pointer — the order is the allocator's,
                   not the program's.

Frontends (--frontend, default "auto" = best available):

  libclang   clang.cindex over compile_commands.json — genuine AST
             and type queries. Needs the libclang Python bindings
             (apt: python3-clang).
  ast-json   `clang++ -Xclang -ast-dump=json` per TU — same AST,
             driver only, no bindings needed.
  textual    pure-Python scanner/scope-tracker — no clang at all.
             Approximates types from declaration text; keeps the
             gate alive on toolchain-less runners.

Requesting libclang/ast-json explicitly when unavailable exits 2
with a clear message; "auto" degrades (with a warning) instead so CI
always gets a verdict. Deliberate exceptions use the same escape as
the lint, anchored to the finding line (same or immediately
preceding line):

    // neu10-lint: allow(impure-path): why this one is sound

Findings are emitted as schema-versioned JSON (--json PATH, schema
"neu10-analyze-v1") even on clean runs. --cache-dir caches per-file
parse results keyed on content digest so repeated CI runs only
re-parse what changed.

Usage: python3 tools/neu10_analyze.py [--root DIR] [--build-dir DIR]
           [--frontend auto|libclang|ast-json|textual] [--json PATH]
           [--cache-dir DIR] [--entry NAME]... [--list-rules]
Exit status: 0 clean, 1 findings, 2 setup error.
"""

import argparse
import hashlib
import json
import os
import pathlib
import re
import shutil
import subprocess
import sys

SCHEMA = "neu10-analyze-v1"
# Bump to invalidate --cache-dir entries when parsing/IR changes.
IR_VERSION = 8

RULES = {
    "impure-path": "call chain from a sim entry point reaches a "
                   "nondeterminism source",
    "unordered-iter": "hash-order iteration feeding *Result data or "
                      "JSON export (type-based)",
    "mutable-global": "non-const global/static neither atomic, "
                      "thread_local nor NEU10_GUARDED_BY-annotated",
    "pointer-key-iter": "ordered iteration over a raw-pointer-keyed "
                        "map/set",
}

# Default purity roots: the fleet driver, both serving loops, the
# scenario runner, and the core-simulator advance path (both engines
# funnel through advanceTo/onEvent).
DEFAULT_ENTRIES = [
    "runFleet",
    "runServing",
    "runLlmServing",
    "runScenario",
    "NpuCoreSim::advanceTo",
    "NpuCoreSim::onEvent",
]

# Nondeterminism sources for impure-path: (category, regex, human
# name, path fragments whose files may use the source legitimately).
# time()/clock() additionally pass the call-site heuristic below so
# `Clock clock(freq)` declarations do not fire.
BANNED_SOURCES = [
    ("wall-clock",
     re.compile(r"\b(?:system|steady|high_resolution)_clock\s*::\s*now\b"),
     "std::chrono clock now()", ()),
    ("wall-clock", re.compile(r"\b(?:gettimeofday|clock_gettime)\s*\("),
     "gettimeofday()/clock_gettime()", ()),
    ("wall-clock", re.compile(r"(?<![\w.:>])(?:std::)?time\s*\("),
     "time()", ()),
    ("wall-clock", re.compile(r"(?<![\w.:>])(?:std::)?clock\s*\("),
     "clock()", ()),
    ("unseeded-random", re.compile(r"(?<![\w.:>])(?:std::)?s?rand\s*\("),
     "rand()/srand()", ("common/random",)),
    ("unseeded-random", re.compile(r"\brandom_device\b"),
     "std::random_device", ("common/random",)),
    ("environment", re.compile(r"(?<![\w.:>])(?:std::)?(?:secure_)?getenv\s*\("),
     "getenv()", ("common/env",)),
    ("thread-identity", re.compile(r"\bthis_thread\s*::\s*get_id\b"),
     "std::this_thread::get_id()", ()),
    ("thread-identity", re.compile(r"\bpthread_self\s*\("),
     "pthread_self()", ()),
    ("stream-io", re.compile(r"\bstd\s*::\s*c(?:out|err|log)\b"),
     "std::cout/cerr/clog", ("common/logging",)),
    ("stream-io", re.compile(r"(?<![\w.:>])(?:printf|puts|putchar)\s*\("),
     "stdout stream write", ("common/logging",)),
    ("stream-io", re.compile(r"\bfprintf\s*\(\s*std(?:out|err)\b"),
     "fprintf(stdout/stderr)", ("common/logging",)),
]

CALL_HEURISTIC = {"time", "clock", "rand", "srand"}

CALL_PREFIX_KEYWORDS = {"return", "case", "if", "while", "for", "do",
                        "else", "switch", "co_return", "co_yield",
                        "and", "or", "not", "throw", "comma"}

KEYWORD_NONCALLS = {
    "if", "for", "while", "switch", "return", "catch", "sizeof",
    "alignof", "decltype", "noexcept", "new", "delete", "throw",
    "static_cast", "const_cast", "reinterpret_cast", "dynamic_cast",
    "static_assert", "assert", "defined", "alignas", "case",
    "template", "typename", "operator", "requires", "co_await",
    "co_yield", "co_return", "explicit", "typeid", "using",
}

ALLOW_RE = re.compile(r"neu10-lint:\s*allow\(([a-z\-,\s]+)\)")
RESULT_TYPE_RE = re.compile(r"\b[A-Z]\w*Result\b")
JSON_NAME_RE = re.compile(r"[Jj]son|JSON")
UNORDERED_DECL_RE = re.compile(
    r"unordered_(?:map|set)\s*<.*>[&\s]*([A-Za-z_]\w*)\s*[;({=\[,)]")
UNORDERED_TYPE_RE = re.compile(r"\bunordered_(?:map|set)\b")
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;)]*:\s*([A-Za-z_]\w*)")
# `.begin()` starts a walk; a lone `.end()` is the find()-lookup
# idiom and carries no order dependence.
BEGIN_ITER_RE = re.compile(r"\b([A-Za-z_]\w*)\s*(?:\.|->)\s*c?begin\s*\(")
CALL_RE = re.compile(r"(?<![\w.:>])((?:[A-Za-z_]\w*\s*::\s*)*[A-Za-z_]\w*)\s*\(")
MEMBER_CALL_RE = re.compile(r"(?:\.|->)\s*([A-Za-z_]\w*)\s*\(")
# A declaration whose initializer runs a constructor: `Rng rng(seed)`,
# `ScopedLogContext ctx{b, c}`. Capitalized head = project type.
CTOR_DECL_RE = re.compile(
    r"(?<![\w.:>])([A-Z]\w*)(?:\s*<[^<>;]*>)?\s+[A-Za-z_]\w*\s*[({]")
ORDERED_PTR_RE = re.compile(
    r"\b(?:std\s*::\s*)?(?:multi)?(?:map|set)\s*<")
TEXT_EXTS = (".cc", ".cpp", ".cxx", ".hh", ".hpp", ".h")


# ---------------------------------------------------------------------------
# Shared helpers (mirrors tools/lint_determinism.py semantics)
# ---------------------------------------------------------------------------

def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving line
    structure, so the analysis only sees code."""
    out = []
    i, n = 0, len(text)
    state = "code"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state, i = "line", i + 2
                out.append("  ")
                continue
            if c == "/" and nxt == "*":
                state, i = "block", i + 2
                out.append("  ")
                continue
            if c == '"':
                state = "str"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "chr"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state, i = "code", i + 2
                out.append("  ")
                continue
            out.append(c if c == "\n" else " ")
        else:
            quote = '"' if state == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append(" " if c != "\n" else c)
        i += 1
    return "".join(out)


def looks_like_call(line, start):
    prefix = line[:start].rstrip()
    if not prefix:
        return True
    if prefix[-1].isalnum() or prefix[-1] == "_":
        word = re.search(r"([A-Za-z_]\w*)$", prefix)
        return bool(word) and word.group(1) in CALL_PREFIX_KEYWORDS
    return prefix[-1] not in "&*>"


def collect_allows(raw_lines, code_lines):
    """Line -> set of waived rules. A directive anchors to its own
    line and the next line holding code (comment-only continuation
    lines are skipped). Unknown rule names are ignored here — the
    lint owns its vocabulary, this tool owns RULES."""
    allows = {}
    for idx, line in enumerate(raw_lines, start=1):
        m = ALLOW_RE.search(line)
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",")
                 if r.strip() in RULES}
        if not rules:
            continue
        allows.setdefault(idx, set()).update(rules)
        for j in range(idx + 1, len(code_lines) + 1):
            allows.setdefault(j, set()).update(rules)
            if code_lines[j - 1].strip():
                break
    return allows


def is_exempt(rel_posix, fragments):
    return any(frag in rel_posix for frag in fragments)


# ---------------------------------------------------------------------------
# Intermediate representation (one dict per file, JSON-serializable)
#
# file IR:
#   functions: [{qname, name, file, line, end_line, calls:[[name,line]],
#                banned:[[category, what, line]],
#                iters:[[name, line]], locals_unordered:[names],
#                locals_ptrkey:[names], result_flow: bool}]
#   members_unordered: {ClassName: [member names]}
#   members_ptrkey:    {ClassName: [member names]}
#   file_unordered: [names]      file-scope unordered variables
#   file_ptrkey:    [names]
#   globals: [{name, line, text, exempt_via}]   mutable-global facts
# ---------------------------------------------------------------------------


GLOBAL_EXEMPT_RES = [
    ("constexpr", re.compile(r"\bconstexpr\b")),
    ("consteval", re.compile(r"\bconsteval\b")),
    ("const", re.compile(r"\bconst\b")),
    ("std::atomic", re.compile(r"\batomic\s*<")),
    ("thread_local", re.compile(r"\bthread_local\b")),
    ("NEU10_GUARDED_BY", re.compile(r"\bNEU10_(?:PT_)?GUARDED_BY\s*\(")),
    # Synchronization primitives are internally synchronized — a
    # global mutex is the thing other globals get guarded *by*.
    ("sync-primitive",
     re.compile(r"\b(?:mutex|shared_mutex|recursive_mutex|timed_mutex|"
                r"once_flag|condition_variable(?:_any)?)\b")),
]

DECL_SKIP_RE = re.compile(
    r"^\s*(?:typedef|using|template|friend|struct|class|union|enum|"
    r"namespace|extern|static_assert|public|private|protected|"
    r"#)\b")


def template_region(stmt):
    """Span of a leading template<...> prefix, if any."""
    m = re.match(r"\s*template\s*<", stmt)
    if not m:
        return 0
    depth, i = 1, m.end()
    while i < len(stmt) and depth:
        if stmt[i] == "<":
            depth += 1
        elif stmt[i] == ">":
            depth -= 1
        i += 1
    return i


def extract_fn_name(stmt):
    """Function name (possibly Class::qualified) from a signature
    statement: the identifier chain before the first top-level '('."""
    stmt = stmt[template_region(stmt):]
    depth_angle = 0
    for i, c in enumerate(stmt):
        if c == "<":
            depth_angle += 1
        elif c == ">":
            depth_angle = max(0, depth_angle - 1)
        elif c == "(" and depth_angle == 0:
            head = stmt[:i].rstrip()
            m = re.search(r"((?:[A-Za-z_]\w*\s*::\s*)*~?[A-Za-z_]\w*"
                          r"|operator\s*[^\s\w]{1,3})$", head)
            if not m:
                return None
            return re.sub(r"\s+", "", m.group(1))
    return None


def looks_like_signature(stmt):
    """Does a brace-introducing statement read as a function
    definition header (vs an initializer)?"""
    s = stmt.rstrip()
    if not s or "(" not in s:
        return False
    # Strip trailing specifiers and annotation macros after the
    # parameter list: const noexcept override final -> T try
    # NEU10_REQUIRES(m) NEU10_EXCLUDES(m) ...
    for _ in range(8):
        s2 = re.sub(r"(?:\bconst|\bnoexcept(?:\s*\([^()]*\))?|"
                    r"\boverride|\bfinal|\btry|\bNEU10_\w+\s*\([^()]*\)|"
                    r"->\s*[\w:<>&*\s]+)\s*$", "", s).rstrip()
        if s2 == s:
            break
        s = s2
    if s.endswith(")"):
        return True
    # Constructor with member-init list: "Foo::Foo(...) : a_(1), b_{}"
    return bool(re.search(r"\)\s*:", s))


def close_angle(text, start):
    """Index just past the '>' matching the '<' at text[start]."""
    depth = 0
    for i in range(start, len(text)):
        if text[i] == "<":
            depth += 1
        elif text[i] == ">":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def ptrkey_decl_names(stmt):
    """Variable names declared with an ordered map/set keyed by a raw
    pointer inside `stmt`."""
    names = []
    for m in ORDERED_PTR_RE.finditer(stmt):
        if "unordered_" in stmt[max(0, m.start() - 10):m.start() + 1]:
            continue
        open_i = m.end() - 1
        close_i = close_angle(stmt, open_i)
        inner = stmt[open_i + 1:close_i - 1]
        # Key type: up to the first top-level comma (set has none).
        depth, key_end = 0, len(inner)
        for i, c in enumerate(inner):
            if c == "<":
                depth += 1
            elif c == ">":
                depth -= 1
            elif c == "," and depth == 0:
                key_end = i
                break
        if "*" not in inner[:key_end]:
            continue
        m2 = re.match(r"[&\s]*([A-Za-z_]\w*)\s*[;({=\[]",
                      stmt[close_i:])
        if m2:
            names.append(m2.group(1))
    return names


class _Scope:
    __slots__ = ("kind", "name", "stmt", "fn")

    def __init__(self, kind, name="", fn=None):
        self.kind = kind      # ns | class | fn | blk | init
        self.name = name
        self.stmt = ""        # statement accumulator (ns/class)
        self.fn = fn          # function record for kind == fn


def parse_tu_textual(path, rel_posix):
    """Parse one file into the shared IR with the pure-Python
    frontend: a comment/string-stripping scanner plus a brace scope
    tracker that classifies every '{' as namespace, class, function
    body, or initializer."""
    raw = path.read_text(encoding="utf-8", errors="replace")
    code = strip_comments_and_strings(raw)
    code_lines = code.splitlines()

    ir = {
        "file": rel_posix,
        "functions": [],
        "members_unordered": {},
        "members_ptrkey": {},
        "file_unordered": [],
        "file_ptrkey": [],
        "globals": [],
    }

    stack = [_Scope("ns", "")]  # file scope behaves like a namespace

    def enclosing_class():
        for sc in reversed(stack):
            if sc.kind == "class":
                return sc.name
        return ""

    def qualify(name):
        parts = [sc.name for sc in stack
                 if sc.kind in ("ns", "class") and sc.name]
        if "::" in name:
            return "::".join(parts + [name]) if parts else name
        return "::".join(parts + [name]) if parts else name

    def process_decl(stmt, lineno, scope):
        """A ';'-terminated statement at namespace or class scope:
        record unordered/pointer-keyed members and mutable globals."""
        s = stmt.strip()
        # Access-specifier labels end with ':' not ';' and so glue
        # onto the declaration that follows them — peel them off.
        s = re.sub(r"^(?:(?:public|private|protected)\s*:\s*)+", "",
                   s)
        if not s or DECL_SKIP_RE.match(s):
            return
        target_u = (ir["members_unordered"].setdefault(scope.name, [])
                    if scope.kind == "class" else ir["file_unordered"])
        target_p = (ir["members_ptrkey"].setdefault(scope.name, [])
                    if scope.kind == "class" else ir["file_ptrkey"])
        m = UNORDERED_DECL_RE.search(s + ";")
        if m:
            target_u.append(m.group(1))
        for nm in ptrkey_decl_names(s + ";"):
            target_p.append(nm)
        # ---- mutable-global audit ---------------------------------
        # Namespace-scope variables (any), class-scope only `static`
        # data members. A top-level '(' before any '=' reads as a
        # function declaration/prototype, not a variable.
        if scope.kind == "class" and not re.match(r"static\b", s):
            return
        body = s
        eq = None
        depth = 0
        for i, c in enumerate(body):
            if c in "<([":
                depth += 1
            elif c in ">)]":
                depth = max(0, depth - 1)
            elif c == "=" and depth == 0 and \
                    (i + 1 == len(body) or body[i + 1] != "=") and \
                    (i == 0 or body[i - 1] not in "=!<>+-*/|&^"):
                eq = i
                break
        head = body if eq is None else body[:eq]
        if "(" in re.sub(r"NEU10_\w+\s*\([^()]*\)", "", head) \
                or "operator" in head:
            return  # function declaration / prototype
        m = re.search(r"([A-Za-z_]\w*)\s*(?:\[[^\]]*\]\s*)*"
                      r"(?:NEU10_\w+\s*\([^()]*\)\s*)?(?:{}\s*)?$",
                      head)
        if not m:
            return
        name = m.group(1)
        if name in ("void", "return", "break", "continue", "goto",
                    "default", "else", "true", "false", "nullptr"):
            return
        exempt_via = next((tag for tag, rx in GLOBAL_EXEMPT_RES
                           if rx.search(s)), None)
        ir["globals"].append({
            "name": name, "line": lineno, "text": " ".join(s.split()),
            "exempt_via": exempt_via,
        })

    def new_fn(name, lineno):
        return {
            "qname": qualify(name), "name": name.split("::")[-1],
            "cls": (name.split("::")[-2] if "::" in name
                    else enclosing_class()),
            "file": rel_posix, "line": lineno, "end_line": lineno,
            "calls": [], "banned": [], "iters": [],
            "locals_unordered": [], "locals_ptrkey": [],
            "result_flow": False, "sig": "",
        }

    # ---- scan: classify every brace --------------------------------
    line_no = 1
    fn_body_ranges = []  # (start_line, end_line, fn record)
    i, n = 0, len(code)
    while i < n:
        c = code[i]
        if c == "\n":
            line_no += 1
            stack[-1].stmt += "\n"
            i += 1
            continue
        if c == "{":
            cur = stack[-1]
            if cur.kind in ("fn", "blk", "init"):
                stack.append(_Scope("blk" if cur.kind != "init"
                                    else "init"))
                i += 1
                continue
            stmt = cur.stmt
            flat = " ".join(stmt.split())
            mns = re.search(r"\bnamespace\b\s*([A-Za-z_]\w*)?\s*$",
                            flat)
            if mns:
                stack.append(_Scope("ns", mns.group(1) or "(anon)"))
                cur.stmt = ""
            elif re.search(r"\b(?:class|struct|union|enum)\b", flat) \
                    and not flat.rstrip().endswith(")") \
                    and not looks_like_signature(flat):
                mcls = re.search(r"\b(?:class|struct|union)\s+"
                                 r"(?:alignas\s*\([^)]*\)\s*)?"
                                 r"(?:NEU10_\w+(?:\s*\([^()]*\))?\s+)*"
                                 r"([A-Za-z_]\w*)", flat)
                stack.append(_Scope("class",
                                    mcls.group(1) if mcls else "(anon)"))
                cur.stmt = ""
            elif looks_like_signature(flat):
                name = extract_fn_name(flat) or "(unknown)"
                fn = new_fn(name, line_no)
                fn["sig"] = flat
                stack.append(_Scope("fn", name, fn))
                cur.stmt = ""
            else:
                stack.append(_Scope("init"))
            i += 1
            continue
        if c == "}":
            if len(stack) > 1:
                closed = stack.pop()
                if closed.kind == "fn":
                    closed.fn["end_line"] = line_no
                    fn_body_ranges.append(
                        (closed.fn["line"], line_no, closed.fn))
                    ir["functions"].append(closed.fn)
                    stack[-1].stmt = ""
                elif closed.kind == "init" and \
                        stack[-1].kind in ("ns", "class"):
                    stack[-1].stmt += "{}"
                elif closed.kind in ("ns", "class"):
                    stack[-1].stmt = ""
            i += 1
            continue
        if c == ";":
            cur = stack[-1]
            if cur.kind in ("ns", "class"):
                process_decl(" ".join(cur.stmt.split()),
                             line_no, cur)
                cur.stmt = ""
            i += 1
            continue
        stack[-1].stmt += c
        i += 1

    # ---- per-function body passes ----------------------------------
    for start, end, fn in fn_body_ranges:
        body_lines = [(ln, code_lines[ln - 1])
                      for ln in range(start, min(end, len(code_lines)) + 1)]
        # Exclude lines owned by nested function definitions? Nested
        # ranges only occur for lambdas, which belong to the
        # enclosing function by design.
        text = fn["sig"] + "\n" + \
            "\n".join(line for _, line in body_lines)
        fn["result_flow"] = bool(RESULT_TYPE_RE.search(text)) or \
            bool(JSON_NAME_RE.search(fn["name"])) or \
            "ostream" in fn["sig"]
        for ln, line in body_lines:
            for m in CALL_RE.finditer(line):
                nm = re.sub(r"\s+", "", m.group(1))
                base = nm.split("::")[-1]
                if base in KEYWORD_NONCALLS or nm in KEYWORD_NONCALLS:
                    continue
                fn["calls"].append([nm, ln])
            for m in MEMBER_CALL_RE.finditer(line):
                if m.group(1) not in KEYWORD_NONCALLS:
                    fn["calls"].append([m.group(1), ln])
            # `Type var(args);` / `Type var{...};` declarations run
            # Type's constructor — an edge CALL_RE cannot see (it
            # captures `var`, not `Type`).
            for m in CTOR_DECL_RE.finditer(line):
                if m.group(1) not in KEYWORD_NONCALLS:
                    fn["calls"].append([m.group(1), ln])
            for category, rx, what, exempt in BANNED_SOURCES:
                m = rx.search(line)
                if not m:
                    continue
                base = re.sub(r"[^a-z_]", "", what.split("(")[0])
                if what in ("time()", "clock()", "rand()/srand()") \
                        and not looks_like_call(line, m.start()):
                    continue
                fn["banned"].append([category, what, ln, exempt])
            m = UNORDERED_DECL_RE.search(line)
            if m:
                fn["locals_unordered"].append(m.group(1))
            for nm in ptrkey_decl_names(line):
                fn["locals_ptrkey"].append(nm)
            for m in RANGE_FOR_RE.finditer(line):
                fn["iters"].append([m.group(1), ln])
            for m in BEGIN_ITER_RE.finditer(line):
                fn["iters"].append([m.group(1), ln])
        # Function-local statics join the shared-state audit.
        for ln, line in body_lines:
            ms = re.match(r"\s*static\s+(?!assert\b|cast\b)(.*)$", line)
            if ms and not re.match(r"\s*static_", line):
                decl = ms.group(1)
                if "(" in decl.split("=")[0] and \
                        "atomic" not in decl:
                    continue
                mname = re.search(r"([A-Za-z_]\w*)\s*(?:=|{|;|\[)",
                                  decl)
                if not mname:
                    continue
                exempt_via = next(
                    (tag for tag, rx in GLOBAL_EXEMPT_RES
                     if rx.search(line)), None)
                ir["globals"].append({
                    "name": mname.group(1), "line": ln,
                    "text": " ".join(line.split()),
                    "exempt_via": exempt_via,
                })
    return ir


# ---------------------------------------------------------------------------
# libclang frontend
# ---------------------------------------------------------------------------

def libclang_available():
    try:
        import clang.cindex  # noqa: F401
        return True
    except ImportError:
        return False


def parse_with_libclang(root, files, compile_args):
    """Parse every file with clang.cindex into the shared IR.
    Genuine type queries: unordered/pointer-keyed detection uses the
    canonical type spelling, const-ness uses Type.is_const_qualified.
    Raises on any setup/parse failure (caller falls back)."""
    import clang.cindex as ci
    try:
        index = ci.Index.create()
    except ci.LibclangError as err:
        raise RuntimeError(f"libclang unusable: {err}")

    CK = ci.CursorKind
    irs = []
    for path in files:
        rel_posix = path.relative_to(root).as_posix()
        args = compile_args.get(str(path),
                                ["-std=c++20", f"-I{root / 'src'}"])
        tu = index.parse(str(path), args=args)
        fatal = [d for d in tu.diagnostics if d.severity >= 4]
        if fatal:
            raise RuntimeError(
                f"{rel_posix}: {fatal[0].spelling}")
        ir = {
            "file": rel_posix, "functions": [],
            "members_unordered": {}, "members_ptrkey": {},
            "file_unordered": [], "file_ptrkey": [], "globals": [],
        }

        def in_this_file(cur):
            return cur.location.file and \
                pathlib.Path(str(cur.location.file)).resolve() == path

        def qname(cur):
            parts = []
            p = cur
            while p is not None and p.kind != CK.TRANSLATION_UNIT:
                if p.spelling:
                    parts.append(p.spelling)
                elif p.kind == CK.NAMESPACE:
                    parts.append("(anon)")
                p = p.semantic_parent
            return "::".join(reversed(parts))

        def type_is_unordered(t):
            return "unordered_map" in t.spelling or \
                "unordered_set" in t.spelling

        def type_is_ptr_keyed(t):
            s = t.get_canonical().spelling
            m = re.search(r"\b(?:multi)?(?:map|set)<", s)
            if not m or "unordered" in s[:m.start()]:
                return False
            inner = s[m.end():]
            depth, key = 0, inner
            for i, ch in enumerate(inner):
                if ch == "<":
                    depth += 1
                elif ch == ">" and depth > 0:
                    depth -= 1
                elif (ch == "," or (ch == ">" and depth == 0)):
                    key = inner[:i]
                    break
            return "*" in key

        def record_banned(fn, cur, text, line):
            for category, rx, what, exempt in BANNED_SOURCES:
                if rx.search(text):
                    fn["banned"].append([category, what, line, exempt])
                    return

        def walk_body(fn, cur):
            for ch in cur.get_children():
                line = ch.location.line or fn["line"]
                if ch.kind == CK.CALL_EXPR:
                    ref = ch.referenced
                    nm = ref.spelling if ref else ch.spelling
                    if nm:
                        fn["calls"].append([nm, line])
                    txt = " ".join(t.spelling for t in ch.get_tokens())
                    record_banned(fn, ch, txt, line)
                elif ch.kind == CK.DECL_REF_EXPR:
                    txt = ch.spelling or ""
                    if "random_device" in txt:
                        fn["banned"].append(
                            ["unseeded-random", "std::random_device",
                             line, ("common/random",)])
                elif ch.kind == CK.VAR_DECL:
                    if type_is_unordered(ch.type):
                        fn["locals_unordered"].append(ch.spelling)
                    if type_is_ptr_keyed(ch.type):
                        fn["locals_ptrkey"].append(ch.spelling)
                    if RESULT_TYPE_RE.search(ch.type.spelling):
                        fn["result_flow"] = True
                elif ch.kind == CK.CXX_FOR_RANGE_STMT:
                    kids = list(ch.get_children())
                    if len(kids) >= 2:
                        rng = kids[-2]
                        nm = rng.spelling or \
                            "".join(t.spelling
                                    for t in rng.get_tokens())[:40]
                        if type_is_unordered(rng.type):
                            fn["iters"].append([nm, line])
                            fn["locals_unordered"].append(nm)
                        if type_is_ptr_keyed(rng.type):
                            fn["iters"].append([nm, line])
                            fn["locals_ptrkey"].append(nm)
                walk_body(fn, ch)

        def walk(cur):
            for ch in cur.get_children():
                if ch.kind in (CK.NAMESPACE, CK.CLASS_DECL,
                               CK.STRUCT_DECL, CK.CLASS_TEMPLATE):
                    walk(ch)
                    continue
                if not in_this_file(ch):
                    continue
                if ch.kind == CK.FIELD_DECL:
                    cls = ch.semantic_parent.spelling or "(anon)"
                    if type_is_unordered(ch.type):
                        ir["members_unordered"].setdefault(
                            cls, []).append(ch.spelling)
                    if type_is_ptr_keyed(ch.type):
                        ir["members_ptrkey"].setdefault(
                            cls, []).append(ch.spelling)
                elif ch.kind == CK.VAR_DECL:
                    t = ch.type
                    spelled = t.spelling
                    exempt_via = None
                    if t.is_const_qualified() or \
                            "const " in spelled or \
                            spelled.endswith("const"):
                        exempt_via = "const"
                    elif "atomic" in spelled:
                        exempt_via = "std::atomic"
                    elif ch.storage_class == \
                            ci.StorageClass.STATIC and \
                            "thread_local" in " ".join(
                                tk.spelling
                                for tk in ch.get_tokens()[:4]):
                        exempt_via = "thread_local"
                    toks = " ".join(tk.spelling
                                    for tk in ch.get_tokens())
                    if "constexpr" in toks:
                        exempt_via = exempt_via or "constexpr"
                    if "thread_local" in toks:
                        exempt_via = exempt_via or "thread_local"
                    if "NEU10_GUARDED_BY" in toks or \
                            "guarded_by" in toks:
                        exempt_via = exempt_via or "NEU10_GUARDED_BY"
                    if type_is_unordered(t):
                        ir["file_unordered"].append(ch.spelling)
                    if type_is_ptr_keyed(t):
                        ir["file_ptrkey"].append(ch.spelling)
                    ir["globals"].append({
                        "name": ch.spelling,
                        "line": ch.location.line,
                        "text": " ".join(toks.split())[:120],
                        "exempt_via": exempt_via,
                    })
                elif ch.kind in (CK.FUNCTION_DECL, CK.CXX_METHOD,
                                 CK.CONSTRUCTOR, CK.DESTRUCTOR,
                                 CK.FUNCTION_TEMPLATE) and \
                        ch.is_definition():
                    fn = {
                        "qname": qname(ch), "name": ch.spelling,
                        "cls": (ch.semantic_parent.spelling
                                if ch.semantic_parent.kind in
                                (CK.CLASS_DECL, CK.STRUCT_DECL)
                                else ""),
                        "file": rel_posix,
                        "line": ch.location.line,
                        "end_line": ch.extent.end.line,
                        "calls": [], "banned": [], "iters": [],
                        "locals_unordered": [], "locals_ptrkey": [],
                        "result_flow": False, "sig": ch.displayname,
                    }
                    sig_types = [a.type.spelling
                                 for a in ch.get_arguments()]
                    sig_types.append(ch.result_type.spelling)
                    if any(RESULT_TYPE_RE.search(s)
                           for s in sig_types) or \
                            JSON_NAME_RE.search(ch.spelling or "") or \
                            any("ostream" in s for s in sig_types):
                        fn["result_flow"] = True
                    walk_body(fn, ch)
                    ir["functions"].append(fn)
                else:
                    walk(ch)

        walk(tu.cursor)
        irs.append(ir)
    return irs


# ---------------------------------------------------------------------------
# clang -ast-dump=json frontend
# ---------------------------------------------------------------------------

def find_clang():
    for cand in (os.environ.get("CLANGXX"), "clang++", "clang"):
        if cand and shutil.which(cand):
            return shutil.which(cand)
    return None


def parse_with_astjson(root, files, compile_args, clang_bin):
    """Parse each file via `clang -Xclang -ast-dump=json` into the
    shared IR. Raises on failure (caller falls back)."""
    irs = []
    for path in files:
        rel_posix = path.relative_to(root).as_posix()
        args = compile_args.get(str(path),
                                ["-std=c++20", f"-I{root / 'src'}"])
        cmd = [clang_bin, "-x", "c++", "-fsyntax-only",
               "-Xclang", "-ast-dump=json", *args, str(path)]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0 and not proc.stdout:
            raise RuntimeError(
                f"{rel_posix}: clang failed: "
                f"{proc.stderr.splitlines()[:1]}")
        ast = json.loads(proc.stdout)
        ir = {
            "file": rel_posix, "functions": [],
            "members_unordered": {}, "members_ptrkey": {},
            "file_unordered": [], "file_ptrkey": [], "globals": [],
        }
        state = {"file": None, "line": 0}

        def loc(node):
            l = node.get("loc") or {}
            if "file" in l:
                state["file"] = l["file"]
            if "line" in l:
                state["line"] = l["line"]
            sp = l.get("spellingLoc") or {}
            if "file" in sp:
                state["file"] = sp["file"]
            if "line" in sp:
                state["line"] = sp["line"]
            return state["line"]

        def in_main_file():
            f = state["file"]
            return f is None or \
                pathlib.Path(f).resolve() == path.resolve()

        def tspell(node):
            return ((node.get("type") or {}).get("qualType", ""))

        def is_unordered_t(t):
            return "unordered_map" in t or "unordered_set" in t

        def is_ptrkey_t(t):
            m = re.search(r"\b(?:multi)?(?:map|set)<", t)
            if not m or "unordered" in t[:m.start()]:
                return False
            inner = t[m.end():]
            depth = 0
            for i, ch in enumerate(inner):
                if ch == "<":
                    depth += 1
                elif ch == ">" and depth:
                    depth -= 1
                elif ch == "," and depth == 0 or \
                        (ch == ">" and depth == 0):
                    return "*" in inner[:i]
            return False

        def walk_body(fn, node):
            kind = node.get("kind", "")
            line = loc(node)
            if kind in ("CallExpr", "CXXMemberCallExpr",
                        "CXXOperatorCallExpr"):
                callee = find_callee(node)
                if callee:
                    fn["calls"].append([callee, line])
                    for category, rx, what, exempt in BANNED_SOURCES:
                        if rx.search(callee) or \
                                rx.search(callee + "("):
                            fn["banned"].append(
                                [category, what, line, exempt])
            elif kind == "DeclRefExpr":
                ref = (node.get("referencedDecl") or {})
                nm = ref.get("name", "")
                qn = qual_of(ref)
                full = qn + nm
                for category, rx, what, exempt in BANNED_SOURCES:
                    if rx.search(full) or rx.search(full + "("):
                        fn["banned"].append(
                            [category, what, line, exempt])
            elif kind == "VarDecl":
                t = tspell(node)
                if is_unordered_t(t):
                    fn["locals_unordered"].append(node.get("name", ""))
                if is_ptrkey_t(t):
                    fn["locals_ptrkey"].append(node.get("name", ""))
                if RESULT_TYPE_RE.search(t):
                    fn["result_flow"] = True
            elif kind == "CXXForRangeStmt":
                rng = (node.get("inner") or [])
                for sub in rng:
                    if sub.get("kind") == "DeclStmt":
                        for d in sub.get("inner") or []:
                            t = tspell(d)
                            if is_unordered_t(t):
                                fn["iters"].append(
                                    [d.get("name", "(range)"), line])
                                fn["locals_unordered"].append(
                                    d.get("name", "(range)"))
                            if is_ptrkey_t(t):
                                fn["iters"].append(
                                    [d.get("name", "(range)"), line])
                                fn["locals_ptrkey"].append(
                                    d.get("name", "(range)"))
            for sub in node.get("inner") or []:
                walk_body(fn, sub)

        def qual_of(ref):
            # ast-dump JSON carries no qualified name; approximate
            # from the mangled name when present.
            return ""

        def find_callee(node):
            for sub in node.get("inner") or []:
                k = sub.get("kind")
                if k == "ImplicitCastExpr":
                    r = find_callee(sub)
                    if r:
                        return r
                elif k in ("DeclRefExpr", "MemberExpr"):
                    ref = sub.get("referencedDecl") or {}
                    return ref.get("name") or sub.get("name", "")
            return None

        def walk(node, cls=""):
            kind = node.get("kind", "")
            line = loc(node)
            if kind in ("FunctionDecl", "CXXMethodDecl",
                        "CXXConstructorDecl", "CXXDestructorDecl") \
                    and node.get("inner") and in_main_file():
                has_body = any(s.get("kind") == "CompoundStmt"
                               for s in node["inner"])
                if has_body:
                    nm = node.get("name", "(unknown)")
                    fn = {
                        "qname": (cls + "::" + nm) if cls else nm,
                        "name": nm, "cls": cls, "file": rel_posix,
                        "line": line,
                        "end_line": ((node.get("range") or {})
                                     .get("end", {}).get("line",
                                                         line)),
                        "calls": [], "banned": [], "iters": [],
                        "locals_unordered": [], "locals_ptrkey": [],
                        "result_flow": False,
                        "sig": tspell(node),
                    }
                    if RESULT_TYPE_RE.search(tspell(node)) or \
                            JSON_NAME_RE.search(nm) or \
                            "ostream" in tspell(node):
                        fn["result_flow"] = True
                    for sub in node["inner"]:
                        if sub.get("kind") == "CompoundStmt":
                            walk_body(fn, sub)
                    ir["functions"].append(fn)
                    return
            if kind == "FieldDecl" and in_main_file():
                t = tspell(node)
                if is_unordered_t(t):
                    ir["members_unordered"].setdefault(
                        cls or "(anon)", []).append(
                            node.get("name", ""))
                if is_ptrkey_t(t):
                    ir["members_ptrkey"].setdefault(
                        cls or "(anon)", []).append(
                            node.get("name", ""))
            if kind == "VarDecl" and in_main_file() and \
                    node.get("name"):
                t = tspell(node)
                exempt_via = None
                if "const" in t.split("*")[-1] or \
                        t.startswith("const "):
                    exempt_via = "const"
                if "atomic" in t:
                    exempt_via = "std::atomic"
                if node.get("tls"):
                    exempt_via = "thread_local"
                if node.get("constexpr"):
                    exempt_via = "constexpr"
                ir["globals"].append({
                    "name": node["name"], "line": line,
                    "text": t[:120], "exempt_via": exempt_via,
                })
            next_cls = cls
            if kind in ("CXXRecordDecl",) and node.get("name"):
                next_cls = node["name"]
            for sub in node.get("inner") or []:
                walk(sub, next_cls)

        walk(ast)
        irs.append(ir)
    return irs


# ---------------------------------------------------------------------------
# Program assembly + rules
# ---------------------------------------------------------------------------

class Program:
    def __init__(self, irs):
        self.irs = irs
        self.functions = []
        self.members_unordered = {}
        self.members_ptrkey = {}
        self.file_unordered = {}
        self.file_ptrkey = {}
        self.globals = []
        for ir in irs:
            self.functions.extend(ir["functions"])
            for cls, names in ir["members_unordered"].items():
                self.members_unordered.setdefault(
                    cls, set()).update(names)
            for cls, names in ir["members_ptrkey"].items():
                self.members_ptrkey.setdefault(
                    cls, set()).update(names)
            self.file_unordered[ir["file"]] = set(ir["file_unordered"])
            self.file_ptrkey[ir["file"]] = set(ir["file_ptrkey"])
            for g in ir["globals"]:
                self.globals.append(dict(g, file=ir["file"]))
        # Name index: simple name -> function records. Over-
        # approximate resolution (any same-named function) keeps the
        # purity rule conservative across TUs.
        self.by_name = {}
        for fn in self.functions:
            self.by_name.setdefault(fn["name"], []).append(fn)

    def resolve(self, name):
        base = name.split("::")[-1]
        cands = self.by_name.get(base, [])
        if "::" in name:
            want = name.replace(" ", "")
            exact = [f for f in cands
                     if f["qname"].endswith(want) or
                     f["qname"].replace("(anon)::", "").endswith(want)]
            if exact:
                return exact
        return cands

    def entry_functions(self, entries):
        out = []
        for e in entries:
            out.extend(self.resolve(e))
        return out


def rule_impure_path(program, entries, findings):
    """BFS over the call graph from the entry set; report every
    banned-source use reachable through the graph, with the chain."""
    from collections import deque

    parents = {}
    q = deque()
    for fn in sorted(program.entry_functions(entries),
                     key=lambda f: (f["file"], f["line"])):
        key = id(fn)
        if key not in parents:
            parents[key] = None
            q.append(fn)
    seen_sites = set()
    fn_by_id = {id(f): f for f in program.functions}
    while q:
        fn = q.popleft()
        for category, what, line, exempt in fn["banned"]:
            if is_exempt(fn["file"], exempt):
                continue
            site = (fn["file"], line, what)
            if site in seen_sites:
                continue
            seen_sites.add(site)
            chain = []
            cur = id(fn)
            while cur is not None:
                f = fn_by_id[cur]
                chain.append({"function": f["qname"] or f["name"],
                              "file": f["file"], "line": f["line"]})
                cur = parents[cur]
            chain.reverse()
            hops = " -> ".join(h["function"] for h in chain)
            findings.append({
                "rule": "impure-path",
                "file": fn["file"], "line": line,
                "message": f"{what} reachable from sim entry point: "
                           f"{hops} [{category}]",
                "chain": chain + [{"function": what,
                                   "file": fn["file"], "line": line}],
            })
        for callee_name, call_line in fn["calls"]:
            for callee in program.resolve(callee_name):
                key = id(callee)
                if key not in parents:
                    parents[key] = id(fn)
                    q.append(callee)


def rule_unordered_iter(program, findings):
    for fn in program.functions:
        if not fn["result_flow"]:
            continue
        declared = set(fn["locals_unordered"])
        declared |= program.members_unordered.get(fn["cls"], set())
        declared |= program.file_unordered.get(fn["file"], set())
        for name, line in fn["iters"]:
            if name in declared:
                findings.append({
                    "rule": "unordered-iter",
                    "file": fn["file"], "line": line,
                    "message": f"iteration over unordered '{name}' in "
                               f"{fn['qname'] or fn['name']} which "
                               "feeds *Result/JSON output — order is "
                               "hash/pointer dependent; sort or "
                               "iterate an ordered index",
                })


def rule_pointer_key_iter(program, findings):
    for fn in program.functions:
        declared = set(fn["locals_ptrkey"])
        declared |= program.members_ptrkey.get(fn["cls"], set())
        declared |= program.file_ptrkey.get(fn["file"], set())
        if not declared:
            continue
        for name, line in fn["iters"]:
            if name in declared:
                findings.append({
                    "rule": "pointer-key-iter",
                    "file": fn["file"], "line": line,
                    "message": f"ordered iteration over '{name}', a "
                               "map/set keyed by raw pointer — "
                               "iteration order is the allocator's; "
                               "key by a stable id instead",
                })


def rule_mutable_global(program, findings):
    for g in program.globals:
        if g["exempt_via"]:
            continue
        findings.append({
            "rule": "mutable-global",
            "file": g["file"], "line": g["line"],
            "message": f"mutable global/static '{g['name']}' "
                       f"({g['text'][:60]}) — make it const, "
                       "constexpr, std::atomic, thread_local, or "
                       "NEU10_GUARDED_BY-annotated",
        })


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def source_files(root):
    src = root / "src"
    files = []
    for ext in TEXT_EXTS:
        files.extend(src.rglob(f"*{ext}"))
    return sorted(set(files))


def load_compile_args(build_dir, root):
    """Map resolved file path -> clang frontend args from
    compile_commands.json (flags the TU was really built with),
    minus the flags that only matter for codegen."""
    args_by_file = {}
    if not build_dir:
        return args_by_file
    db = pathlib.Path(build_dir) / "compile_commands.json"
    if not db.exists():
        return args_by_file
    for entry in json.loads(db.read_text(encoding="utf-8")):
        path = (pathlib.Path(entry["directory"]) /
                entry["file"]).resolve()
        argv = entry.get("arguments")
        if argv is None:
            argv = entry.get("command", "").split()
        keep, skip_next = [], True  # skip argv[0] (the compiler)
        for a in argv:
            if skip_next:
                skip_next = False
                continue
            if a in ("-c", "-o"):
                skip_next = a == "-o"
                continue
            if a.endswith((".cc", ".cpp", ".o")):
                continue
            keep.append(a)
        args_by_file[str(path)] = keep
    return args_by_file


def digest(path):
    return hashlib.sha256(path.read_bytes()).hexdigest()


def parse_all(frontend, root, files, compile_args, cache_dir,
              warnings):
    """Parse `files` with the chosen frontend, consulting the
    per-file digest cache. Clang-based frontends parse whole TUs (so
    caching is per file all the same — key covers frontend)."""
    cache = pathlib.Path(cache_dir) if cache_dir else None
    if cache:
        cache.mkdir(parents=True, exist_ok=True)

    def cache_key(path):
        return f"{digest(path)}-{frontend}-v{IR_VERSION}.json"

    irs, missing = [], []
    for path in files:
        if cache:
            entry = cache / cache_key(path)
            if entry.exists():
                irs.append(json.loads(
                    entry.read_text(encoding="utf-8")))
                continue
        missing.append(path)

    if missing:
        if frontend == "textual":
            fresh = [parse_tu_textual(p, p.relative_to(root).as_posix())
                     for p in missing]
        elif frontend == "libclang":
            fresh = parse_with_libclang(root, missing, compile_args)
        else:
            fresh = parse_with_astjson(root, missing, compile_args,
                                       find_clang())
        if cache:
            for path, ir in zip(missing, fresh):
                (cache / cache_key(path)).write_text(
                    json.dumps(ir), encoding="utf-8")
        irs.extend(fresh)
    return irs, len(files) - len(missing)


def pick_frontend(requested, warnings):
    if requested != "auto":
        if requested == "libclang" and not libclang_available():
            print("neu10_analyze: libclang Python bindings not "
                  "importable (install python3-clang) — requested "
                  "frontend unavailable", file=sys.stderr)
            raise SystemExit(2)
        if requested == "ast-json" and find_clang() is None:
            print("neu10_analyze: no clang/clang++ driver on PATH — "
                  "requested frontend unavailable", file=sys.stderr)
            raise SystemExit(2)
        return requested
    if libclang_available():
        return "libclang"
    if find_clang() is not None:
        return "ast-json"
    warnings.append(
        "libclang bindings and clang driver both absent — using the "
        "pure-Python textual frontend (types approximated from "
        "declaration text)")
    return "textual"


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=".",
                    help="repo root holding src/ (default: cwd)")
    ap.add_argument("--build-dir", default=None,
                    help="build dir holding compile_commands.json "
                         "(clang frontends; optional)")
    ap.add_argument("--frontend", default="auto",
                    choices=["auto", "libclang", "ast-json",
                             "textual"])
    ap.add_argument("--json", dest="json_out", default=None,
                    help="write the findings record here "
                         f"(schema {SCHEMA})")
    ap.add_argument("--cache-dir", default=None,
                    help="cache parsed per-file IR keyed on content "
                         "digest")
    ap.add_argument("--entry", action="append", default=[],
                    help="additional purity entry point (repeatable); "
                         "defaults always apply")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args()

    if args.list_rules:
        for name, summary in RULES.items():
            print(f"{name:17s} {summary}")
        return 0

    root = pathlib.Path(args.root).resolve()
    if not (root / "src").is_dir():
        print(f"neu10_analyze: no src/ under {root}", file=sys.stderr)
        return 2

    warnings = []
    frontend = pick_frontend(args.frontend, warnings)
    files = source_files(root)
    compile_args = load_compile_args(args.build_dir, root)
    entries = DEFAULT_ENTRIES + args.entry

    try:
        irs, cached = parse_all(frontend, root, files, compile_args,
                                args.cache_dir, warnings)
    except Exception as err:  # noqa: BLE001 — any frontend failure
        if args.frontend != "auto":
            print(f"neu10_analyze: {frontend} frontend failed: {err}",
                  file=sys.stderr)
            return 2
        warnings.append(f"{frontend} frontend failed ({err}); "
                        "falling back to textual")
        frontend = "textual"
        irs, cached = parse_all(frontend, root, files, compile_args,
                                args.cache_dir, warnings)

    program = Program(irs)
    findings = []
    rule_impure_path(program, entries, findings)
    rule_unordered_iter(program, findings)
    rule_pointer_key_iter(program, findings)
    rule_mutable_global(program, findings)

    # ---- allow() escapes, anchored exactly like the lint ----------
    allows_by_file = {}

    def allows_for(rel):
        if rel not in allows_by_file:
            path = root / rel
            raw = path.read_text(encoding="utf-8", errors="replace")
            code = strip_comments_and_strings(raw)
            allows_by_file[rel] = collect_allows(
                raw.splitlines(), code.splitlines())
        return allows_by_file[rel]

    kept, allowed = [], []
    for f in findings:
        if f["rule"] in allows_for(f["file"]).get(f["line"], set()):
            allowed.append(f)
        else:
            kept.append(f)
    kept.sort(key=lambda f: (f["file"], f["line"], f["rule"]))

    for w in warnings:
        print(f"neu10_analyze: warning: {w}", file=sys.stderr)
    for f in kept:
        print(f"{f['file']}:{f['line']}: {f['rule']}: {f['message']}")
        for hop in f.get("chain", []):
            print(f"    via {hop['file']}:{hop['line']}: "
                  f"{hop['function']}")

    n_edges = sum(len(fn["calls"]) for fn in program.functions)
    record = {
        "schema": SCHEMA,
        "frontend": frontend,
        "root": str(root),
        "entry_points": entries,
        "files_analyzed": len(files),
        "files_from_cache": cached,
        "functions": len(program.functions),
        "call_edges": n_edges,
        "rules": RULES,
        "warnings": warnings,
        "findings": kept,
        "allowed": [{k: v for k, v in f.items() if k != "chain"}
                    for f in allowed],
    }
    if args.json_out:
        pathlib.Path(args.json_out).write_text(
            json.dumps(record, indent=1, sort_keys=True) + "\n",
            encoding="utf-8")

    cache_note = (f" ({cached} from cache)" if args.cache_dir
                  else "")
    print(f"neu10_analyze: {frontend} frontend, {len(files)} files"
          f"{cache_note}, {len(program.functions)} functions, "
          f"{n_edges} call edges, {len(kept)} finding(s), "
          f"{len(allowed)} allowed")
    return 1 if kept else 0


if __name__ == "__main__":
    sys.exit(main())
