#!/usr/bin/env python3
"""Project-invariant determinism lint for the neu10 source tree.

The fleet engine promises bit-identical results at any thread width
and across engines; runtime A/B tests enforce that dynamically, this
lint enforces the common ways of breaking it statically:

  banned-random   rand()/srand(), std::random_device, time()/clock(),
                  and std::chrono wall/steady clocks anywhere outside
                  common/random.* — every stochastic element must draw
                  from the explicitly seeded Rng.
  unordered-iter  range-for or .begin() iteration over a variable
                  declared as std::unordered_map/unordered_set in a
                  file that produces *Result data or lives under a
                  deterministic-export scope (obs/ — the trace/
                  metrics byte streams the identity tests compare —
                  and llm/, whose KV-page books feed the byte-exact
                  goldens) — hash-order walks feeding results make
                  the outcome depend on pointer layout. Sort first,
                  or iterate an ordered index.
  float-eq        == / != where either operand is a floating-point
                  literal or a variable declared double/float/Cycles,
                  in allocator/accounting code (vnpu/, stats/, sched/,
                  cluster/, llm/) — exact FP equality on computed
                  values is how cross-platform drift sneaks into the
                  books.
  naked-new       naked new / delete — owning raw pointers defeat the
                  leak- and lifetime-cleanliness the ASan gate checks;
                  use containers or smart pointers.
  stale-allow     an allow() directive that no longer suppresses any
                  finding — the code it excused was fixed or moved,
                  so the escape hatch must be removed, not rot.

Deliberate exceptions carry an inline escape hatch on the same or the
immediately preceding line, naming the rule they waive:

    // neu10-lint: allow(float-eq): comparing the untouched sentinel

Usage: python3 tools/lint_determinism.py [--root DIR] [FILES...]
       python3 tools/lint_determinism.py --list-rules
Exit status: 0 when clean, 1 when any finding survives the allows.
"""

import argparse
import pathlib
import re
import sys

# Rule name -> one-line summary (kept in sync with the module doc).
RULES = {
    "banned-random": "unseeded/wall-clock randomness outside common/random",
    "unordered-iter": "hash-order iteration in a *Result-producing "
                      "or deterministic-export (obs/) file",
    "float-eq": "floating-point ==/!= in allocator/accounting code",
    "naked-new": "naked new/delete",
    "stale-allow": "allow() directive that suppresses nothing",
}

# Rules owned solely by the whole-program analyzer
# (tools/neu10_analyze.py). It shares the allow() escape (and the
# unordered-iter name, which both tools check); its private rule
# names are legal in directives but not ours to judge, so they
# neither error as unknown nor count toward staleness here.
ANALYZER_ONLY_RULES = {"impure-path", "mutable-global",
                       "pointer-key-iter"}

# Files exempt from banned-random: the seeded generator itself.
RANDOM_EXEMPT = ("common/random.hh", "common/random.cc")

# float-eq only applies to allocator/accounting code. llm/ qualifies:
# KV-page occupancy/fragmentation accounting is FP and feeds goldens.
FLOAT_EQ_SCOPES = ("vnpu/", "stats/", "sched/", "cluster/", "llm/")

ALLOW_RE = re.compile(r"neu10-lint:\s*allow\(([a-z\-,\s]+)\)")

BANNED_RANDOM_RES = [
    (re.compile(r"(?<![\w.:>])(?:std::)?s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"(?<![\w.:>])(?:std::)?time\s*\("), "time()"),
    (re.compile(r"(?<![\w.:>])(?:std::)?clock\s*\("), "clock()"),
    (re.compile(r"\b(?:system|steady|high_resolution)_clock\b"),
     "std::chrono clocks"),
]

# Keywords that can legitimately precede a function call; any other
# identifier right before `time(` / `clock(` means a declaration of a
# variable by that name (`Clock clock(freq)`), not a libc call.
CALL_PREFIX_KEYWORDS = {"return", "case", "if", "while", "for", "do",
                        "else", "switch", "co_return", "co_yield",
                        "and", "or", "not", "throw"}


def looks_like_call(line, start):
    """True when the match at line[start:] is a call site rather than
    a declaration of a same-named variable."""
    prefix = line[:start].rstrip()
    if not prefix:
        return True
    if prefix[-1].isalnum() or prefix[-1] == "_":
        word = re.search(r"([A-Za-z_]\w*)$", prefix)
        return bool(word) and word.group(1) in CALL_PREFIX_KEYWORDS
    return prefix[-1] not in "&*>"  # `Clock &clock(`, `Foo *time(`

FLOAT_LITERAL_RE = re.compile(r"(?<![\w.])(?:\d+\.\d*|\.\d+|\d+e[-+]?\d+)f?")
NEW_RE = re.compile(r"(?<![\w.:>])new\s+[A-Za-z_(]")
DELETE_RE = re.compile(r"(?<![\w.:>])delete\b(?!d)")
RESULT_FILE_RE = re.compile(r"\b\w+Result\b")
# Path fragments whose files export deterministic byte streams (the
# trace/metrics JSON the byte-identity tests compare, and the LLM
# serving layer whose per-sequence KV books feed the byte-exact
# scenario goldens): hash-order iteration is a determinism bug there
# even when no *Result type is named in the file.
RESULT_SCOPES = ("obs/", "llm/")
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;)]*:\s*([A-Za-z_]\w*)")
# `.begin()` starts a walk; a lone `.end()` is the find()-lookup
# idiom (`it != names.end()`) and carries no order dependence.
BEGIN_ITER_RE = re.compile(r"\b([A-Za-z_]\w*)\s*[.]\s*c?begin\s*\(")
# A declaration introducing an unordered container variable — local,
# member, or function parameter (hence ',' and ')'): the variable
# name is the identifier right after the closing '>'.
UNORDERED_DECL_RE = re.compile(
    r"unordered_(?:map|set)\s*<.*>[&\s]*([A-Za-z_]\w*)\s*[;({=\[,)]")
FLOAT_DECL_RE = re.compile(
    r"\b(?:double|float|Cycles)\b[^;=(]*?([A-Za-z_]\w*)\s*[;({=\[,]")
FLOAT_TMPL_DECL_RE = re.compile(
    r"<\s*(?:double|float|Cycles)\s*>[&\s]*([A-Za-z_]\w*)\s*[;({=\[]")
CMP_RE = re.compile(r"([A-Za-z_][\w.\[\]>-]*|[^=!<>]\S*)\s*[=!]=\s*"
                    r"([A-Za-z_][\w.\[\]>-]*|\S+)")


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving line
    structure, so the rules only see code."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "str"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "chr"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        else:  # str / chr
            quote = '"' if state == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append(" " if c != "\n" else c)
        i += 1
    return "".join(out)


def collect_allows(raw_lines, code_lines):
    """Parse allow() directives. Returns (allows, directives):
    allows maps line number -> {rule: directive}, where a directive
    covers its own line and the next line holding code (comment-only
    lines in between — the rest of the justification — are skipped).
    directives is the list of records, each tracking which of its
    rules actually suppressed a finding, for the stale-allow audit."""
    allows = {}
    directives = []
    for idx, line in enumerate(raw_lines, start=1):
        m = ALLOW_RE.search(line)
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
        unknown = rules - set(RULES) - ANALYZER_ONLY_RULES
        if unknown:
            raise SystemExit(
                f"line {idx}: unknown rule(s) in allow(): "
                f"{', '.join(sorted(unknown))}")
        directive = {"line": idx, "rules": rules & set(RULES),
                     "consumed": set()}
        directives.append(directive)
        covered = [idx]
        for j in range(idx + 1, len(code_lines) + 1):
            covered.append(j)
            if code_lines[j - 1].strip():
                break
        for j in covered:
            slot = allows.setdefault(j, {})
            for rule in directive["rules"]:
                slot[rule] = directive
    return allows, directives


def base_identifier(expr):
    """Leading identifier of an expression like open[i].second."""
    m = re.match(r"\s*[&*(]*([A-Za-z_]\w*)", expr)
    return m.group(1) if m else ""


def lint_file(path, rel, findings):
    raw = path.read_text(encoding="utf-8")
    raw_lines = raw.splitlines()
    code = strip_comments_and_strings(raw)
    code_lines = code.splitlines()
    try:
        allows, directives = collect_allows(raw_lines, code_lines)
    except SystemExit as err:
        raise SystemExit(f"{rel}: {err}")

    def report(lineno, rule, message):
        directive = allows.get(lineno, {}).get(rule)
        if directive is not None:
            directive["consumed"].add(rule)
            return
        findings.append((rel, lineno, rule, message))

    # ---- banned-random -------------------------------------------
    if not str(rel).replace("\\", "/").endswith(RANDOM_EXEMPT):
        for lineno, line in enumerate(code_lines, start=1):
            for pattern, what in BANNED_RANDOM_RES:
                m = pattern.search(line)
                if m and looks_like_call(line, m.start()):
                    report(lineno, "banned-random",
                           f"{what} — draw from the seeded common/"
                           "random Rng instead")

    # ---- unordered-iter ------------------------------------------
    rel_posix = str(rel).replace("\\", "/")
    if RESULT_FILE_RE.search(code) or \
            any(scope in rel_posix for scope in RESULT_SCOPES):
        unordered = set()
        for line in code_lines:
            for m in UNORDERED_DECL_RE.finditer(line):
                unordered.add(m.group(1))
        if unordered:
            for lineno, line in enumerate(code_lines, start=1):
                seqs = [m.group(1)
                        for m in RANGE_FOR_RE.finditer(line)]
                seqs += [m.group(1)
                         for m in BEGIN_ITER_RE.finditer(line)]
                for name in seqs:
                    if name in unordered:
                        report(lineno, "unordered-iter",
                               f"iteration over unordered '{name}' in "
                               "a deterministic-output file — order "
                               "is hash/pointer dependent; sort or "
                               "index")

    # ---- float-eq -------------------------------------------------
    if any(scope in rel_posix for scope in FLOAT_EQ_SCOPES):
        float_names = set()
        for line in code_lines:
            for m in FLOAT_DECL_RE.finditer(line):
                float_names.add(m.group(1))
            for m in FLOAT_TMPL_DECL_RE.finditer(line):
                float_names.add(m.group(1))
        for lineno, line in enumerate(code_lines, start=1):
            for m in CMP_RE.finditer(line):
                lhs, rhs = m.group(1), m.group(2)
                floaty = (FLOAT_LITERAL_RE.fullmatch(lhs.strip())
                          or FLOAT_LITERAL_RE.fullmatch(rhs.strip())
                          or base_identifier(lhs) in float_names
                          or base_identifier(rhs) in float_names)
                if floaty:
                    report(lineno, "float-eq",
                           f"exact FP comparison '{m.group(0).strip()}'"
                           " in accounting code — compare against an "
                           "epsilon or restructure")

    # ---- naked-new ------------------------------------------------
    for lineno, line in enumerate(code_lines, start=1):
        if NEW_RE.search(line):
            report(lineno, "naked-new",
                   "naked 'new' — use a container or smart pointer")
        if DELETE_RE.search(line) and "= delete" not in line:
            report(lineno, "naked-new",
                   "naked 'delete' — use a container or smart pointer")

    # ---- stale-allow ----------------------------------------------
    # Every rule a directive names must have excused at least one
    # finding above; directives naming only analyzer-owned rules were
    # filtered out of `rules` already and are the analyzer's to judge.
    for directive in directives:
        for rule in sorted(directive["rules"] - directive["consumed"]):
            findings.append(
                (rel, directive["line"], "stale-allow",
                 f"allow({rule}) no longer suppresses any finding — "
                 "remove the directive"))


def source_files(root):
    src = root / "src"
    for ext in ("*.hh", "*.cc", "*.hpp", "*.cpp", "*.h"):
        yield from sorted(src.rglob(ext))


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=".",
                    help="repo root holding src/ (default: cwd)")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("files", nargs="*",
                    help="lint only these files (default: src/**)")
    args = ap.parse_args()

    if args.list_rules:
        for name, summary in RULES.items():
            print(f"{name:15s} {summary}")
        return 0

    root = pathlib.Path(args.root).resolve()
    files = ([pathlib.Path(f).resolve() for f in args.files]
             if args.files else list(source_files(root)))

    findings = []
    for path in files:
        try:
            rel = path.relative_to(root)
        except ValueError:
            rel = path
        lint_file(path, rel, findings)

    for rel, lineno, rule, message in findings:
        print(f"{rel}:{lineno}: {rule}: {message}")
    print(f"lint_determinism: {len(files)} files, "
          f"{len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
