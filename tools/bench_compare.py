#!/usr/bin/env python3
"""Check and compare bench_perf_engine's BENCH_PERF.json records.

Two modes:

  bench_compare.py --check CURRENT.json
      Self-check one record: every scenario must be bit_identical and
      the canonical fleet scenario's speedup must meet the file's own
      min_speedup_required.

  bench_compare.py BASELINE.json CURRENT.json [--max-regression F]
                   [--max-overhead G]
      Compare a fresh record against a recorded baseline. Wall-clock
      and cycles/second are host-dependent, so the gating metric is
      the engine *speedup ratio* per scenario (largely machine
      independent): the run fails if any scenario's speedup fell
      below (1 - F) x its baseline value (default F = 0.5, i.e. flag
      only a halving — smoke-mode CI runs are noisy). Absolute
      cycles/second numbers are printed for the record. Scenarios
      present on only one side are reported but do not fail the run
      (the suite is allowed to grow).

      The tracing overhead gate: the canonical fleet scenario's
      event-driven cycles/second (tracing compiled in but *disabled*)
      must stay within (1 - G) x the baseline's (default G = 0.02 —
      the zero-overhead-off contract in docs/OBSERVABILITY.md).
      Absolute throughput only compares like with like, so the gate
      is applied only when both records' smoke flags match, and
      skipped with a note otherwise.

Records with schema_version 1 (pre-provenance) and 2 (git_sha /
compiler / build_type / tracing) are both accepted; comparing across
schema versions warns but does not fail.

Both modes also accept bench_llm_serving records (schema 1), and a
bench_perf_engine record may carry the same fields in an optional
"llm_serving" block. The LLM gates are simulation-deterministic (no
wall clock): engines must be bit-identical, tokens_speedup must meet
the record's own min_tokens_speedup_required, and ttft_p99_ratio
must not exceed 1.0 — continuous batching must beat the static-batch
baseline on both headline metrics. In compare mode the speedup is
additionally gated against (1 - F) x the baseline's value whenever
both sides carry LLM numbers.

Exit status: 0 when every gate passes, 1 otherwise, 2 on bad usage.
"""

import argparse
import json
import pathlib
import sys


SCHEMAS = {"bench_perf_engine": (1, 2), "bench_llm_serving": (1,)}


def load(path):
    with open(path, encoding="utf-8") as f:
        record = json.load(f)
    kind = record.get("bench")
    if kind not in SCHEMAS:
        sys.exit(f"error: {path} is not a bench_perf_engine or "
                 f"bench_llm_serving record")
    if record.get("schema_version") not in SCHEMAS[kind]:
        sys.exit(f"error: {path} has unsupported schema_version "
                 f"{record.get('schema_version')!r} for {kind}")
    return record


def scenarios(record):
    return {s["name"]: s for s in record.get("scenarios", [])}


def llm_view(record):
    """The LLM headline block: the record itself for
    bench_llm_serving, the optional "llm_serving" block for
    bench_perf_engine, None when absent."""
    if record.get("bench") == "bench_llm_serving":
        return record
    return record.get("llm_serving")


def check_llm(block, label):
    ok = True
    required = float(block.get("min_tokens_speedup_required", 1.05))
    speedup = float(block.get("tokens_speedup", 0.0))
    ratio = float(block.get("ttft_p99_ratio", float("inf")))
    if not block.get("bit_identical_engines", False):
        print(f"FAIL  {label}: engines diverged on the LLM "
              f"scenarios (bit_identical_engines is false)")
        ok = False
    if speedup < required:
        print(f"FAIL  {label}: tokens_speedup {speedup:.2f}x < "
              f"required {required:.2f}x (continuous batching must "
              f"beat static batching)")
        ok = False
    if ratio > 1.0:
        print(f"FAIL  {label}: ttft_p99_ratio {ratio:.2f} > 1.0 "
              f"(continuous batching must cut the p99 TTFT)")
        ok = False
    if ok:
        print(f"ok    {label}: tokens_speedup {speedup:.2f}x >= "
              f"{required:.2f}x, ttft_p99_ratio {ratio:.2f} <= 1.0, "
              f"engines bit-identical")
    return ok


def self_check(record, path):
    if record.get("bench") == "bench_llm_serving":
        return check_llm(record, path)
    ok = True
    if (llm := llm_view(record)) is not None:
        ok = check_llm(llm, "llm_serving")
    required = float(record.get("min_speedup_required", 5.0))
    scen = scenarios(record)
    if not scen:
        print(f"FAIL  {path}: no scenarios recorded")
        return False
    for name, s in scen.items():
        if not s.get("bit_identical", False):
            print(f"FAIL  {name}: engines diverged (bit_identical "
                  f"is false)")
            ok = False
    canon = scen.get("fleet_4board")
    if canon is None:
        print("FAIL  canonical scenario 'fleet_4board' missing")
        ok = False
    elif canon["speedup"] < required:
        print(f"FAIL  fleet_4board: speedup {canon['speedup']:.1f}x "
              f"< required {required:.0f}x")
        ok = False
    else:
        print(f"ok    fleet_4board: speedup {canon['speedup']:.1f}x "
              f">= {required:.0f}x, all scenarios bit-identical")
    tracing = record.get("tracing")
    if tracing is not None and not tracing.get("same_results", False):
        print("FAIL  tracing-on A/B: results differ from untraced run")
        ok = False
    return ok


def overhead_gate(baseline, current, max_overhead):
    """Tracing overhead: canonical event-driven throughput (tracing
    compiled in, disabled) vs baseline. Only meaningful when both
    runs did the same amount of work."""
    b_smoke = bool(baseline.get("smoke", False))
    c_smoke = bool(current.get("smoke", False))
    if b_smoke != c_smoke:
        print(f"note  overhead gate skipped: smoke flags differ "
              f"(baseline {b_smoke}, current {c_smoke})")
        return True
    canon_b = scenarios(baseline).get("fleet_4board")
    canon_c = scenarios(current).get("fleet_4board")
    if canon_b is None or canon_c is None:
        print("note  overhead gate skipped: fleet_4board missing "
              "from one side")
        return True
    b_cps = canon_b["engines"]["event_driven"]["cycles_per_second"]
    c_cps = canon_c["engines"]["event_driven"]["cycles_per_second"]
    floor = (1.0 - max_overhead) * b_cps
    delta = (c_cps - b_cps) / b_cps
    if c_cps >= floor:
        print(f"ok    overhead: fleet_4board event-driven "
              f"{b_cps / 1e6:.0f} -> {c_cps / 1e6:.0f} Mcyc/s "
              f"({delta:+.2%}, allowed -{max_overhead:.0%})")
        return True
    print(f"FAIL  overhead: fleet_4board event-driven throughput "
          f"fell {delta:+.2%} (allowed -{max_overhead:.0%}): "
          f"{b_cps / 1e6:.0f} -> {c_cps / 1e6:.0f} Mcyc/s")
    return False


def compare_llm(baseline, current, max_regression):
    """Gate the LLM headline speedup against the baseline whenever
    both records carry one (either kind). Deterministic metric: a
    drop is a behavioral change, not host noise."""
    b, c = llm_view(baseline), llm_view(current)
    if b is None and c is None:
        return True
    if c is None:
        print("note  llm_serving: only in baseline")
        return True
    if b is None:
        print(f"note  llm_serving: new "
              f"(tokens_speedup {c['tokens_speedup']:.2f}x)")
        return True
    floor = (1.0 - max_regression) * float(b["tokens_speedup"])
    sp = float(c["tokens_speedup"])
    verdict = "ok   " if sp >= floor else "FAIL "
    print(f"{verdict} llm_serving: tokens_speedup "
          f"{b['tokens_speedup']:.2f}x -> {sp:.2f}x "
          f"(floor {floor:.2f}x), ttft_p99_ratio "
          f"{b['ttft_p99_ratio']:.2f} -> {c['ttft_p99_ratio']:.2f}")
    return sp >= floor


def compare(baseline, current, max_regression):
    ok = compare_llm(baseline, current, max_regression)
    if (baseline.get("bench") != "bench_perf_engine" or
            current.get("bench") != "bench_perf_engine"):
        # Engine-speedup scenarios exist only in perf-engine records;
        # a mixed or llm-only pair compares just the LLM block above.
        return ok
    b_schema = baseline.get("schema_version")
    c_schema = current.get("schema_version")
    if b_schema != c_schema:
        print(f"warn  comparing across schema versions "
              f"({b_schema} baseline vs {c_schema} current); "
              f"provenance fields may be missing on one side")
    base = scenarios(baseline)
    cur = scenarios(current)
    for name in sorted(set(base) | set(cur)):
        if name not in cur:
            print(f"note  {name}: only in baseline")
            continue
        if name not in base:
            print(f"note  {name}: new scenario "
                  f"(speedup {cur[name]['speedup']:.1f}x)")
            continue
        b, c = base[name], cur[name]
        floor = (1.0 - max_regression) * b["speedup"]
        verdict = "ok   " if c["speedup"] >= floor else "FAIL "
        if c["speedup"] < floor:
            ok = False
        b_cps = b["engines"]["event_driven"]["cycles_per_second"]
        c_cps = c["engines"]["event_driven"]["cycles_per_second"]
        print(f"{verdict} {name}: speedup {b['speedup']:.1f}x -> "
              f"{c['speedup']:.1f}x (floor {floor:.1f}x), "
              f"event-driven {b_cps / 1e6:.0f} -> "
              f"{c_cps / 1e6:.0f} Mcyc/s")
    return ok


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("files", nargs="+",
                        help="--check: CURRENT.json; otherwise "
                             "BASELINE.json CURRENT.json")
    parser.add_argument("--check", action="store_true",
                        help="self-check a single record")
    parser.add_argument("--max-regression", type=float, default=0.5,
                        help="tolerated fractional speedup drop vs "
                             "baseline (default 0.5)")
    parser.add_argument("--max-overhead", type=float, default=0.02,
                        help="tolerated fractional event-driven "
                             "throughput drop on fleet_4board vs "
                             "baseline — the tracing-off overhead "
                             "contract (default 0.02; gate only "
                             "applies when both records' smoke flags "
                             "match)")
    args = parser.parse_args()

    if args.check:
        if len(args.files) != 1:
            parser.error("--check takes exactly one file")
        record = load(pathlib.Path(args.files[0]))
        sys.exit(0 if self_check(record, args.files[0]) else 1)

    if len(args.files) != 2:
        parser.error("compare mode takes BASELINE.json CURRENT.json")
    baseline = load(pathlib.Path(args.files[0]))
    current = load(pathlib.Path(args.files[1]))
    ok = self_check(current, args.files[1])
    ok = compare(baseline, current, args.max_regression) and ok
    ok = overhead_gate(baseline, current, args.max_overhead) and ok
    sys.exit(0 if ok else 1)


if __name__ == "__main__":
    main()
