#!/usr/bin/env python3
"""Header self-containment check: every src/**/*.hh — plus shared
test headers (tests/*.hh) and any headers under tools/ — must
compile as its own translation unit.

Hidden transitive-include dependencies ("works because some .cc
happened to include <vector> first") rot silently until an unrelated
refactor breaks a build — and they defeat tooling that parses headers
standalone (clang-tidy's header analysis, IDE indexers). This check
generates one TU per header:

    #include "module/file.hh"

and compiles it with -fsyntax-only against the same include path and
standard the library uses. A header that fails names its missing
include directly.

Usage: python3 tools/check_headers.py [--root DIR] [--compiler CXX]
                                      [--jobs N] [HEADERS...]
Exit status: 0 when every header is self-contained, 1 otherwise.
"""

import argparse
import concurrent.futures
import os
import pathlib
import subprocess
import sys
import tempfile


def compile_header(compiler, root, header, tmpdir):
    rel = header.relative_to(root)
    # src/ headers include each other module-relative, so they are
    # checked under the name the library uses; everything else (test
    # and tool headers) is checked by its repo-relative name.
    inc = (rel.relative_to("src") if rel.parts[:1] == ("src",)
           else rel)
    tu = pathlib.Path(tmpdir) / (str(rel).replace(os.sep, "__") + ".cc")
    tu.write_text(f'#include "{inc.as_posix()}"\n', encoding="utf-8")
    cmd = [compiler, "-std=c++20", "-fsyntax-only", "-Wall", "-Wextra",
           f"-I{root / 'src'}", f"-I{root}", f"-I{root / 'tests'}",
           str(tu)]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    return rel.as_posix(), proc.returncode, proc.stderr


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=".",
                    help="repo root holding src/ (default: cwd)")
    ap.add_argument("--compiler",
                    default=os.environ.get("CXX", "c++"))
    ap.add_argument("--jobs", type=int,
                    default=os.cpu_count() or 2)
    ap.add_argument("headers", nargs="*",
                    help="check only these headers (default: src/**)")
    args = ap.parse_args()

    root = pathlib.Path(args.root).resolve()
    headers = ([pathlib.Path(h).resolve() for h in args.headers]
               if args.headers
               else sorted((root / "src").rglob("*.hh"))
               + sorted((root / "tests").glob("*.hh"))
               + sorted((root / "tools").rglob("*.hh")))

    failures = []
    with tempfile.TemporaryDirectory() as tmpdir, \
            concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        futures = [pool.submit(compile_header, args.compiler, root,
                               h, tmpdir) for h in headers]
        for fut in concurrent.futures.as_completed(futures):
            rel, rc, stderr = fut.result()
            if rc != 0:
                failures.append((rel, stderr))

    for rel, stderr in sorted(failures):
        print(f"NOT SELF-CONTAINED  {rel}")
        # First few compiler lines name the missing declaration.
        for line in stderr.splitlines()[:6]:
            print(f"    {line}")
    print(f"check_headers: {len(headers)} headers, "
          f"{len(failures)} not self-contained")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
