#!/usr/bin/env python3
"""clang-tidy driver over the CMake compilation database.

Runs clang-tidy (config from the committed .clang-tidy) on every
library TU under src/, in parallel, and fails on any finding — the CI
style gate. Findings are printed verbatim with file:line so the fix
is one click away.

Requires a configured build directory (compile_commands.json):

    cmake -B build -S .          # CMAKE_EXPORT_COMPILE_COMMANDS is on
    python3 tools/run_tidy.py --build-dir build

Usage: python3 tools/run_tidy.py [--build-dir DIR] [--clang-tidy BIN]
                                 [--jobs N] [FILES...]
Exit status: 0 on zero findings, 1 on findings, 2 on setup errors.
"""

import argparse
import concurrent.futures
import json
import os
import pathlib
import shutil
import subprocess
import sys


def tidy_one(binary, build_dir, path):
    proc = subprocess.run(
        [binary, "-p", str(build_dir), "--quiet", str(path)],
        capture_output=True, text=True)
    # --quiet still emits a "N warnings generated" tail on stderr;
    # findings themselves go to stdout as file:line: warning: ...
    return path, proc.returncode, proc.stdout.strip()


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default="build",
                    help="dir holding compile_commands.json")
    ap.add_argument("--clang-tidy",
                    default=os.environ.get("CLANG_TIDY", "clang-tidy"))
    ap.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    ap.add_argument("files", nargs="*",
                    help="tidy only these TUs (default: src/** from "
                         "the compilation database)")
    args = ap.parse_args()

    if shutil.which(args.clang_tidy) is None:
        print(f"run_tidy: '{args.clang_tidy}' not found — install "
              "clang-tidy or pass --clang-tidy", file=sys.stderr)
        return 2

    build_dir = pathlib.Path(args.build_dir)
    db_path = build_dir / "compile_commands.json"
    if not db_path.exists():
        print(f"run_tidy: {db_path} missing — configure first "
              "(cmake -B build -S .)", file=sys.stderr)
        return 2

    if args.files:
        files = [pathlib.Path(f).resolve() for f in args.files]
    else:
        db = json.loads(db_path.read_text(encoding="utf-8"))
        files = sorted({
            (pathlib.Path(e["directory"]) / e["file"]).resolve()
            for e in db
            if f"{os.sep}src{os.sep}" in str(
                (pathlib.Path(e["directory"]) / e["file"]).resolve())
        })
    if not files:
        print("run_tidy: no src/ TUs in the compilation database",
              file=sys.stderr)
        return 2

    findings = 0
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        futures = [pool.submit(tidy_one, args.clang_tidy, build_dir, f)
                   for f in files]
        for fut in concurrent.futures.as_completed(futures):
            path, rc, out = fut.result()
            if rc != 0 or out:
                findings += 1
                print(f"---- {path}")
                print(out or f"(clang-tidy exited {rc} silently)")
    print(f"run_tidy: {len(files)} TUs, "
          f"{findings} with findings")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
