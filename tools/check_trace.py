#!/usr/bin/env python3
"""Validate a neu10 Chrome trace-event JSON file (obs/trace.cc).

Checks the contract docs/OBSERVABILITY.md promises to trace
consumers, so CI catches a malformed export before a human loads it
into Perfetto:

  - top level is an object with a "traceEvents" list;
  - every event's phase is one of M (metadata), X (complete span),
    i (instant), b/e (async-nestable begin/end), and carries the
    keys that phase requires;
  - per (pid, tid) track, timestamps are non-decreasing (metadata
    events excluded) and never negative;
  - X spans have dur >= 0 and nest properly per track: a span that
    starts inside an open span must also end inside it;
  - b/e pairs balance per (pid, tid, cat, id, name), each end at or
    after its begin;
  - --require-event NAME (repeatable): at least one non-metadata
    event with that name exists — wired into CI so a refactor that
    silently stops emitting, say, "restore" events fails the build.

With --metrics FILE the companion metrics dump (schema
neu10-metrics-v1, obs/metrics.cc) is validated too: schema tag,
per-metric name/kind, non-decreasing sample timestamps, and the
histogram summary fields.

Exit status: 0 valid, 1 validation failure, 2 bad usage / unreadable
input.
"""

import argparse
import json
import sys

KNOWN_PHASES = {"M", "X", "i", "b", "e"}

# Keys every event of a given phase must carry. "args" is optional
# everywhere except metadata (a nameless metadata event is useless).
REQUIRED_KEYS = {
    "M": {"ph", "pid", "tid", "name", "args"},
    "X": {"ph", "pid", "tid", "ts", "dur", "cat", "name"},
    "i": {"ph", "pid", "tid", "ts", "cat", "name", "s"},
    "b": {"ph", "pid", "tid", "ts", "cat", "name", "id"},
    "e": {"ph", "pid", "tid", "ts", "cat", "name", "id"},
}


class Checker:
    """Collects failures so one run reports every problem at once."""

    def __init__(self, limit=20):
        self.failures = 0
        self.limit = limit

    def fail(self, msg):
        self.failures += 1
        if self.failures <= self.limit:
            print(f"FAIL  {msg}")
        elif self.failures == self.limit + 1:
            print("FAIL  ... further failures suppressed")

    @property
    def ok(self):
        return self.failures == 0


def load_json(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except OSError as err:
        sys.exit(f"error: cannot read {path}: {err}")
    except json.JSONDecodeError as err:
        sys.exit(f"error: {path} is not valid JSON: {err}")


def check_events(doc, chk):
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        chk.fail("top level is not an object with 'traceEvents'")
        return []
    events = doc["traceEvents"]
    if not isinstance(events, list):
        chk.fail("'traceEvents' is not a list")
        return []
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            chk.fail(f"event #{i} is not an object")
            continue
        ph = ev.get("ph")
        if ph not in KNOWN_PHASES:
            chk.fail(f"event #{i} has unknown phase {ph!r}")
            continue
        missing = REQUIRED_KEYS[ph] - ev.keys()
        if missing:
            chk.fail(f"event #{i} (ph={ph}, name="
                     f"{ev.get('name')!r}) missing keys "
                     f"{sorted(missing)}")
        if ph == "i" and ev.get("s") not in ("t", "p", "g"):
            chk.fail(f"event #{i}: instant scope {ev.get('s')!r} "
                     f"not in t/p/g")
    return [ev for ev in events
            if isinstance(ev, dict)
            and ev.get("ph") in KNOWN_PHASES - {"M"}]


def check_monotonic(events, chk):
    last = {}
    for i, ev in enumerate(events):
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)):
            chk.fail(f"event #{i} ({ev.get('name')!r}): ts "
                     f"{ts!r} is not a number")
            continue
        if ts < 0:
            chk.fail(f"event #{i} ({ev.get('name')!r}): negative "
                     f"ts {ts}")
        track = (ev.get("pid"), ev.get("tid"))
        prev = last.get(track)
        if prev is not None and ts < prev:
            chk.fail(f"event #{i} ({ev.get('name')!r}): ts {ts} < "
                     f"{prev} earlier on track pid={track[0]} "
                     f"tid={track[1]}")
        last[track] = max(ts, prev if prev is not None else ts)


# The exporter rounds ts and dur independently to 1e-6 us, so a
# reconstructed span end (ts + dur) can disagree with the next
# span's start by up to 2e-6 us on a shared boundary. Real overlaps
# are at least a simulation cycle (~1e-3 us at GHz clocks).
EPSILON_US = 1e-4


def check_spans(events, chk):
    """X spans: dur >= 0, and proper nesting per track."""
    stacks = {}
    for i, ev in enumerate(events):
        if ev.get("ph") != "X":
            continue
        ts, dur = ev.get("ts"), ev.get("dur")
        if not isinstance(dur, (int, float)) or dur < 0:
            chk.fail(f"event #{i} ({ev.get('name')!r}): bad span "
                     f"dur {dur!r}")
            continue
        if not isinstance(ts, (int, float)):
            continue  # already reported by check_monotonic
        track = (ev.get("pid"), ev.get("tid"))
        stack = stacks.setdefault(track, [])
        while stack and ts >= stack[-1][0] - EPSILON_US:
            stack.pop()
        if stack and ts + dur > stack[-1][0] + EPSILON_US:
            chk.fail(f"event #{i} ({ev.get('name')!r}): span "
                     f"[{ts}, {ts + dur}] straddles enclosing span "
                     f"end {stack[-1][0]} opened by "
                     f"{stack[-1][1]!r} on track pid={track[0]} "
                     f"tid={track[1]}")
        stack.append((ts + dur, ev.get("name")))


def check_async(events, chk):
    """b/e balance per (pid, tid, cat, id, name), end >= begin."""
    open_spans = {}
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph not in ("b", "e"):
            continue
        key = (ev.get("pid"), ev.get("tid"), ev.get("cat"),
               ev.get("id"), ev.get("name"))
        ts = ev.get("ts")
        if ph == "b":
            open_spans.setdefault(key, []).append((i, ts))
            continue
        pending = open_spans.get(key)
        if not pending:
            chk.fail(f"event #{i} ({ev.get('name')!r}): async end "
                     f"without begin (id {ev.get('id')!r})")
            continue
        bi, bts = pending.pop()
        if isinstance(ts, (int, float)) and \
                isinstance(bts, (int, float)) and ts < bts:
            chk.fail(f"event #{i} ({ev.get('name')!r}): async end "
                     f"ts {ts} < begin ts {bts} (begin #{bi})")
    for key, pending in sorted(open_spans.items(), key=str):
        for bi, _ in pending:
            chk.fail(f"event #{bi}: async begin never ended "
                     f"(name {key[4]!r}, id {key[3]!r})")


def check_required(events, names, chk):
    present = {ev.get("name") for ev in events}
    for name in names:
        if name not in present:
            chk.fail(f"required event {name!r} never emitted")


def check_metrics(path, chk):
    doc = load_json(path)
    if not isinstance(doc, dict) or \
            doc.get("schema") != "neu10-metrics-v1":
        chk.fail(f"{path}: schema is not 'neu10-metrics-v1'")
        return
    if not isinstance(doc.get("metrics"), list):
        chk.fail(f"{path}: 'metrics' is not a list")
        return
    for m in doc["metrics"]:
        name = m.get("name")
        if not name or m.get("kind") not in ("counter", "gauge",
                                             "histogram"):
            chk.fail(f"{path}: metric {name!r} has bad kind "
                     f"{m.get('kind')!r}")
            continue
        points = m.get("points")
        if not isinstance(points, list):
            chk.fail(f"{path}: metric {name!r}: 'points' missing")
            continue
        prev = None
        for p in points:
            if not (isinstance(p, list) and len(p) == 2 and
                    all(isinstance(x, (int, float)) for x in p)):
                chk.fail(f"{path}: metric {name!r}: bad sample "
                         f"{p!r}")
                break
            if prev is not None and p[0] < prev:
                chk.fail(f"{path}: metric {name!r}: sample times "
                         f"go backwards ({p[0]} < {prev})")
            prev = p[0]
        if m["kind"] == "histogram":
            missing = {"count", "mean", "p50", "p95",
                       "p99"} - m.keys()
            if missing:
                chk.fail(f"{path}: histogram {name!r} missing "
                         f"summary fields {sorted(missing)}")


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument("--require-event", action="append",
                        default=[], metavar="NAME",
                        help="fail unless an event with this name "
                             "exists (repeatable)")
    parser.add_argument("--metrics", metavar="FILE",
                        help="also validate a neu10-metrics-v1 dump")
    args = parser.parse_args()

    chk = Checker()
    events = check_events(load_json(args.trace), chk)
    check_monotonic(events, chk)
    check_spans(events, chk)
    check_async(events, chk)
    check_required(events, args.require_event, chk)
    if args.metrics:
        check_metrics(args.metrics, chk)

    if chk.ok:
        n_tracks = len({(e.get('pid'), e.get('tid'))
                        for e in events})
        print(f"ok    {args.trace}: {len(events)} events on "
              f"{n_tracks} tracks" +
              (f", metrics valid" if args.metrics else ""))
    sys.exit(0 if chk.ok else 1)


if __name__ == "__main__":
    main()
