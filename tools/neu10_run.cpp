/**
 * @file
 * neu10_run — execute a declarative scenario file.
 *
 * One binary replaces the grow-a-bench-per-experiment workflow: it
 * loads a scenario (a .scn file under scenarios/, format reference
 * in docs/SCENARIOS.md),
 * applies the harness environment knobs (NEU10_SEED / NEU10_SMOKE /
 * NEU10_TRACE / NEU10_TRACE_OUT) and any CLI overrides, runs the
 * fleet or serving engine, prints a human summary, and optionally
 * writes the deterministic machine-readable JSON record that the
 * golden-output regression tests diff.
 *
 * Usage: neu10_run SCENARIO.scn [options]
 *   --json=FILE       write the neu10-scenario-result-v1 record
 *   --smoke           shrink to the scenario's smoke knobs
 *   --seed=N          override the seed (beats file and env)
 *   --engine=NAME     event-driven | per-cycle
 *   --threads=N       host threads for per-core simulations
 *   --placement=NAME  first-fit | best-fit | load-balanced
 *   --core-policy=N   neu10 | neu10-nh | v10 | pmt
 *
 * Precedence: CLI > environment > scenario file. Exit 0 on success,
 * 2 on any usage/parse error (FatalError).
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/env.hh"
#include "common/logging.hh"
#include "common/strings.hh"
#include "scenario/runner.hh"
#include "scenario/scenario.hh"
#include "sim/clock.hh"

using namespace neu10;

namespace
{

void
usage(std::FILE *to)
{
    std::fprintf(
        to,
        "usage: neu10_run SCENARIO.scn [--json=FILE] [--smoke] "
        "[--seed=N]\n"
        "                [--engine=NAME] [--threads=N] "
        "[--placement=NAME]\n"
        "                [--core-policy=NAME]\n");
}

double
toMs(Cycles cycles)
{
    return Clock().toSeconds(cycles) * 1e3;
}

void
printOpenLoop(const Scenario &s, const ScenarioOutcome &o)
{
    const FleetResult &r = o.fleet;
    std::printf("mode        open-loop fleet (%u boards x %u cores, "
                "%u tenants)\n",
                s.boards, s.board.totalCores(), o.tenants);
    std::printf("policy      %s on-core, %s placement, %s engine\n",
                r.policy.c_str(), r.placement.c_str(),
                engineName(s.engine).c_str());
    std::printf("horizon     %.3g cycles  (seed %llu%s)\n", o.horizon,
                static_cast<unsigned long long>(s.seed),
                s.smoke ? ", smoke" : "");
    std::printf("requests    %llu arrived  %llu served  %llu "
                "rejected (%.1f%%)  %llu SLO-met\n",
                static_cast<unsigned long long>(r.submitted),
                static_cast<unsigned long long>(r.completed),
                static_cast<unsigned long long>(r.rejected),
                100.0 * r.rejectionRate(),
                static_cast<unsigned long long>(r.sloMet));
    std::printf("latency     p50 %.3f  p95 %.3f  p99 %.3f ms   "
                "goodput %.0f req/s\n",
                toMs(r.p50()), toMs(r.p95()), toMs(r.p99()),
                r.goodput);
    std::printf("fleet       EU util %.1f%% (stddev %.3f)  %u "
                "migrations  makespan %.3f ms\n",
                100.0 * r.coreEuUtil.mean(), r.coreEuUtil.stddev(),
                r.migrations, toMs(r.makespan));
    if (s.hasLlm) {
        std::uint64_t tokens = 0, preempt = 0;
        std::uint32_t high_water = 0, pages = 0;
        Distribution ttft;
        for (const TenantResult &t : r.tenants) {
            tokens += t.llm.tokensGenerated;
            preempt += t.llm.preemptions;
            high_water += t.llm.kvPageHighWater;
            pages += t.llm.kvPages;
            ttft.merge(t.llm.ttftCycles);
        }
        const double secs =
            std::max(1.0, r.makespan) / s.board.core.freqHz;
        std::printf("llm         %s scheduler  %llu tokens  %.0f "
                    "tok/s  TTFT p50 %.3f  p99 %.3f ms\n",
                    s.llm.scheduler == LlmScheduler::Continuous
                        ? "continuous"
                        : "static-batch",
                    static_cast<unsigned long long>(tokens),
                    static_cast<double>(tokens) / secs,
                    toMs(ttft.percentile(0.50)),
                    toMs(ttft.percentile(0.99)));
        std::printf("kv pool     %u pages fleet-wide  high water %u  "
                    "%llu preemptions\n",
                    pages, high_water,
                    static_cast<unsigned long long>(preempt));
    }
    if (r.faultsInjected > 0)
        std::printf("faults      %u injected  %u core failures  %u "
                    "failovers  %llu lost  %llu recovered  "
                    "availability %.2f%%\n",
                    r.faultsInjected, r.coreFailures, r.failovers,
                    static_cast<unsigned long long>(r.lostRequests),
                    static_cast<unsigned long long>(
                        r.recoveredRequests),
                    100.0 * r.availability);
}

void
printClosedLoop(const Scenario &s, const ScenarioOutcome &o)
{
    const ServingResult &r = o.serving;
    std::printf("mode        closed-loop core (%u tenants, >= %u "
                "requests each)\n",
                o.tenants, s.effectiveMinRequests());
    std::printf("policy      %s, %s engine\n", r.policy.c_str(),
                engineName(s.engine).c_str());
    std::printf("core        ME useful %.1f%%  VE %.1f%%  makespan "
                "%.3f ms  %.0f req/s total\n",
                100.0 * r.meUsefulUtil, 100.0 * r.veUtil,
                toMs(r.makespan), r.totalThroughput());
    for (const TenantResult &t : r.tenants)
        std::printf("tenant      %-14s %4llu done  p50 %8.3f  p95 "
                    "%8.3f  p99 %8.3f ms  %.0f req/s\n",
                    t.model.c_str(),
                    static_cast<unsigned long long>(t.completed),
                    toMs(t.p50()), toMs(t.p95()), toMs(t.p99()),
                    t.throughput);
}

int
run(int argc, char **argv)
{
    std::string scenario_path;
    std::string json_path;
    bool force_smoke = false;
    bool has_seed = false;
    std::uint64_t seed = 0;
    std::string engine_name;
    bool has_threads = false;
    unsigned threads = 0;
    std::string placement_name;
    std::string policy_name;

    for (int a = 1; a < argc; ++a) {
        const char *arg = argv[a];
        if (std::strncmp(arg, "--json=", 7) == 0) {
            json_path = arg + 7;
        } else if (std::strcmp(arg, "--smoke") == 0) {
            force_smoke = true;
        } else if (std::strncmp(arg, "--seed=", 7) == 0) {
            seed = parseUint64(arg + 7, "--seed");
            has_seed = true;
        } else if (std::strncmp(arg, "--engine=", 9) == 0) {
            engine_name = arg + 9;
        } else if (std::strncmp(arg, "--threads=", 10) == 0) {
            threads = static_cast<unsigned>(
                parseUint64(arg + 10, "--threads"));
            has_threads = true;
        } else if (std::strncmp(arg, "--placement=", 12) == 0) {
            placement_name = arg + 12;
        } else if (std::strncmp(arg, "--core-policy=", 14) == 0) {
            policy_name = arg + 14;
        } else if (std::strcmp(arg, "--help") == 0 ||
                   std::strcmp(arg, "-h") == 0) {
            usage(stdout);
            return 0;
        } else if (arg[0] == '-') {
            std::fprintf(stderr, "error: unknown option '%s'\n", arg);
            usage(stderr);
            return 2;
        } else if (scenario_path.empty()) {
            scenario_path = arg;
        } else {
            std::fprintf(stderr,
                         "error: more than one scenario file "
                         "('%s' and '%s')\n",
                         scenario_path.c_str(), arg);
            usage(stderr);
            return 2;
        }
    }
    if (scenario_path.empty()) {
        usage(stderr);
        return 2;
    }

    Scenario s = loadScenarioFile(scenario_path);
    applyEnvOverrides(s);
    // CLI overrides beat both the file and the environment.
    if (force_smoke)
        s.smoke = true;
    if (has_seed)
        s.seed = seed;
    if (!engine_name.empty())
        s.engine = engineFromName(engine_name);
    if (has_threads)
        s.threads = threads;
    if (!placement_name.empty())
        s.placement = placementFromName(placement_name);
    if (!policy_name.empty())
        s.corePolicy = policyFromName(policy_name);

    std::printf("scenario    %s  (%s)\n", s.name.c_str(),
                scenario_path.c_str());
    if (!s.description.empty())
        std::printf("            %s\n", s.description.c_str());

    const ScenarioOutcome o = runScenario(s);
    if (s.mode == ScenarioMode::OpenLoop)
        printOpenLoop(s, o);
    else
        printClosedLoop(s, o);

    if (s.trace.enabled) {
        const std::string path =
            s.traceOut.empty() ? s.name + ".trace.json" : s.traceOut;
        if (s.mode == ScenarioMode::OpenLoop) {
            o.fleet.trace.writeChromeJson(path);
            if (s.trace.metrics)
                o.fleet.metrics.writeJson(path + ".metrics.json",
                                          s.board.core.freqHz);
            std::printf("trace       %llu events -> %s\n",
                        static_cast<unsigned long long>(
                            o.fleet.trace.totalEvents()),
                        path.c_str());
        }
    }

    if (!json_path.empty()) {
        writeOutcomeJson(json_path, s, o);
        std::printf("json        wrote %s\n", json_path.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const FatalError &err) {
        // fatal() already printed the diagnostic at the default log
        // level; repeat it only when logging was silenced.
        if (logLevel() < LogLevel::Warn)
            std::fprintf(stderr, "error: %s\n", err.what());
        return 2;
    }
}
