#!/usr/bin/env python3
"""Fail on broken relative links in README.md and docs/*.md.

Scans markdown inline links and bare reference targets, resolves
relative ones against the file that contains them, and reports any
target that does not exist in the working tree. External schemes
(http/https/mailto) and pure in-page anchors are ignored; an anchor
suffix on a relative link is stripped before the existence check.

Usage: python3 tools/check_docs_links.py [repo-root]
Exit status: 0 when every relative link resolves, 1 otherwise.
"""

import pathlib
import re
import sys

# Inline markdown links: [text](target). Images share the syntax.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def doc_files(root: pathlib.Path):
    for path in [root / "README.md", *sorted((root / "docs").glob("*.md"))]:
        if path.exists():
            yield path


def check(root: pathlib.Path) -> int:
    broken = []
    checked = 0
    for doc in doc_files(root):
        text = doc.read_text(encoding="utf-8")
        # Ignore fenced code blocks: ASCII diagrams and shell samples
        # are full of bracket/paren sequences that are not links.
        text = re.sub(r"```.*?```", "", text, flags=re.S)
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            checked += 1
            resolved = (doc.parent / path_part).resolve()
            if not resolved.exists():
                broken.append((doc.relative_to(root), target))
    for doc, target in broken:
        print(f"BROKEN  {doc}: {target}")
    print(f"checked {checked} relative links in "
          f"{len(list(doc_files(root)))} files, {len(broken)} broken")
    return 1 if broken else 0


if __name__ == "__main__":
    root = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else ".").resolve()
    sys.exit(check(root))
